#include "core/compilation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/logging.h"

namespace slimfast {

int32_t CompiledObject::DomainIndex(ValueId value) const {
  auto it = std::lower_bound(domain.begin(), domain.end(), value);
  if (it == domain.end() || *it != value) return -1;
  return static_cast<int32_t>(it - domain.begin());
}

const CompiledObject* CompiledModel::RowOf(ObjectId object) const {
  if (object < 0 || object >= static_cast<ObjectId>(object_row.size())) {
    return nullptr;
  }
  int32_t row = object_row[static_cast<size_t>(object)];
  if (row < 0) return nullptr;
  return &objects[static_cast<size_t>(row)];
}

namespace {

/// Accumulates sparse (param, coeff) pairs and emits a merged, sorted term
/// list.
class TermAccumulator {
 public:
  void Add(ParamId param, double coeff) { coeffs_[param] += coeff; }

  void AddAll(const std::vector<ParamTerm>& terms) {
    for (const ParamTerm& t : terms) Add(t.param, t.coeff);
  }

  std::vector<ParamTerm> Finish() {
    std::vector<ParamTerm> out;
    out.reserve(coeffs_.size());
    for (const auto& [param, coeff] : coeffs_) {
      if (coeff != 0.0) out.push_back(ParamTerm{param, coeff});
    }
    coeffs_.clear();
    return out;
  }

 private:
  std::map<ParamId, double> coeffs_;
};

/// Selects the copying source pairs: pairs whose agreeing co-observations
/// reach config.copying_min_agreements, capped at copying_max_pairs by
/// descending agreement count.
std::vector<std::pair<SourceId, SourceId>> SelectCopyPairs(
    const Dataset& dataset, const ModelConfig& config) {
  std::unordered_map<int64_t, int64_t> agree_counts;
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& claims = dataset.ClaimsOnObject(o);
    for (size_t a = 0; a < claims.size(); ++a) {
      for (size_t b = a + 1; b < claims.size(); ++b) {
        if (claims[a].value != claims[b].value) continue;
        SourceId i = std::min(claims[a].source, claims[b].source);
        SourceId j = std::max(claims[a].source, claims[b].source);
        if (i == j) continue;
        int64_t key =
            static_cast<int64_t>(i) * dataset.num_sources() + j;
        ++agree_counts[key];
      }
    }
  }
  std::vector<std::pair<int64_t, int64_t>> ranked;  // (count, key)
  for (const auto& [key, count] : agree_counts) {
    if (count >= config.copying_min_agreements) {
      ranked.emplace_back(count, key);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  if (config.copying_max_pairs > 0 &&
      static_cast<int64_t>(ranked.size()) > config.copying_max_pairs) {
    ranked.resize(static_cast<size_t>(config.copying_max_pairs));
  }
  std::vector<std::pair<SourceId, SourceId>> pairs;
  pairs.reserve(ranked.size());
  for (const auto& [count, key] : ranked) {
    pairs.emplace_back(static_cast<SourceId>(key / dataset.num_sources()),
                       static_cast<SourceId>(key % dataset.num_sources()));
  }
  // Deterministic order for stable parameter ids.
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace

CompiledObject CompileObjectRow(
    ObjectId object, const std::vector<SourceClaim>& claims,
    const std::vector<ValueId>& domain, const CompiledModel& model,
    const std::unordered_map<int64_t, int32_t>& copy_pair_index) {
  const ModelConfig& config = model.config;
  CompiledObject obj;
  obj.object = object;
  obj.domain = domain;
  obj.terms.resize(obj.domain.size());
  obj.offsets.assign(obj.domain.size(), 0.0);
  double claim_offset =
      (config.multiclass_offset && obj.domain.size() > 2)
          ? std::log(static_cast<double>(obj.domain.size()) - 1.0)
          : 0.0;
  TermAccumulator acc;
  for (size_t di = 0; di < obj.domain.size(); ++di) {
    ValueId d = obj.domain[di];
    for (const SourceClaim& claim : claims) {
      if (claim.value == d) {
        acc.AddAll(model.sigma_terms[static_cast<size_t>(claim.source)]);
        obj.offsets[di] += claim_offset;
      }
    }
    // Copying factors (Appendix D): when registered pair (i, j) agrees on
    // value v for this object, a weight fires on every candidate d != v —
    // a positive weight pushes the posterior *away* from the pair's value,
    // modeling that joint mistakes are evidence of copying rather than
    // independent corroboration.
    if (config.use_copying_features) {
      for (size_t a = 0; a < claims.size(); ++a) {
        for (size_t b = a + 1; b < claims.size(); ++b) {
          if (claims[a].value != claims[b].value) continue;
          SourceId i = std::min(claims[a].source, claims[b].source);
          SourceId j = std::max(claims[a].source, claims[b].source);
          auto it = copy_pair_index.find(
              static_cast<int64_t>(i) * model.num_sources + j);
          if (it == copy_pair_index.end()) continue;
          if (d != claims[a].value) {
            acc.Add(model.layout.copy_offset + it->second, 1.0);
          }
        }
      }
    }
    obj.terms[di] = acc.Finish();
  }
  return obj;
}

Result<CompiledModel> Compile(const Dataset& dataset,
                              const ModelConfig& config) {
  if (!config.use_source_weights && !config.use_feature_weights) {
    return Status::InvalidArgument(
        "model must use source weights, feature weights, or both");
  }
  if (config.use_feature_weights && !config.use_source_weights &&
      dataset.features().num_features() == 0) {
    return Status::FailedPrecondition(
        "feature-only model requires a dataset with features");
  }
  if (config.use_copying_features && dataset.num_sources() < 2) {
    return Status::FailedPrecondition(
        "copying extension requires at least two sources");
  }

  CompiledModel model;
  model.config = config;
  model.num_sources = dataset.num_sources();
  model.num_features = dataset.features().num_features();

  ParamLayout& layout = model.layout;
  int32_t next = 0;
  layout.source_offset = next;
  layout.num_source_params =
      config.use_source_weights ? dataset.num_sources() : 0;
  next += layout.num_source_params;
  layout.feature_offset = next;
  layout.num_feature_params =
      config.use_feature_weights ? dataset.features().num_features() : 0;
  next += layout.num_feature_params;
  layout.copy_offset = next;
  if (config.use_copying_features) {
    model.copy_pairs = SelectCopyPairs(dataset, config);
    layout.num_copy_params = static_cast<int32_t>(model.copy_pairs.size());
  }
  next += layout.num_copy_params;
  layout.num_params = next;

  // Trust-score expressions σ_s.
  model.sigma_terms.resize(static_cast<size_t>(dataset.num_sources()));
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    auto& terms = model.sigma_terms[static_cast<size_t>(s)];
    if (config.use_source_weights) {
      terms.push_back(ParamTerm{layout.source_offset + s, 1.0});
    }
    if (config.use_feature_weights) {
      for (FeatureId k : dataset.features().FeaturesOf(s)) {
        terms.push_back(ParamTerm{layout.feature_offset + k, 1.0});
      }
    }
  }

  // Fast lookup of registered copying pairs.
  std::unordered_map<int64_t, int32_t> pair_index;
  for (size_t c = 0; c < model.copy_pairs.size(); ++c) {
    const auto& [i, j] = model.copy_pairs[c];
    pair_index.emplace(static_cast<int64_t>(i) * dataset.num_sources() + j,
                       static_cast<int32_t>(c));
  }

  // Per-object posterior expressions, one shared CompileObjectRow call per
  // observed object (the same call DeltaCompile makes for touched rows).
  model.object_row.assign(static_cast<size_t>(dataset.num_objects()), -1);
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& claims = dataset.ClaimsOnObject(o);
    if (claims.empty()) continue;
    model.object_row[static_cast<size_t>(o)] =
        static_cast<int32_t>(model.objects.size());
    model.objects.push_back(
        CompileObjectRow(o, claims, dataset.DomainOf(o), model, pair_index));
  }
  return model;
}

}  // namespace slimfast
