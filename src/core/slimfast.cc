#include "core/slimfast.h"

#include "core/em.h"
#include "core/erm.h"
#include "core/factor_graph_compile.h"
#include "factorgraph/gibbs.h"
#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace slimfast {

namespace {

/// Warm refinement budget: `budget_scale` of the cold budget, floored at
/// `floor` but never above the cold budget itself.
int32_t WarmBudget(int32_t cold, double scale, int32_t floor) {
  int32_t scaled = static_cast<int32_t>(
      std::lround(static_cast<double>(cold) * scale));
  return std::min(cold, std::max(floor, scaled));
}

}  // namespace

Result<SlimFastFit> SlimFast::Fit(const Dataset& dataset,
                                  const TrainTestSplit& split,
                                  uint64_t seed, Executor* exec) const {
  // Compilation: the sparse path compiles (or fetches from the
  // process-wide cache) a CompiledInstance whose flat index ranges all
  // learning stages walk; the legacy dense path recompiles the nested
  // CompiledModel every time. Either way the structure is immutable and
  // shared with the model via shared_ptr.
  Stopwatch compile_watch;
  std::shared_ptr<const CompiledInstance> instance;
  std::shared_ptr<const CompiledModel> compiled;
  if (options_.use_sparse) {
    if (options_.use_compilation_cache) {
      SLIMFAST_ASSIGN_OR_RETURN(instance,
                                CompiledInstanceCache::Global().GetOrCompile(
                                    dataset, options_.model));
    } else {
      SLIMFAST_ASSIGN_OR_RETURN(instance,
                                CompileInstance(dataset, options_.model));
    }
    compiled = instance->model;
  } else {
    SLIMFAST_ASSIGN_OR_RETURN(CompiledModel dense,
                              Compile(dataset, options_.model));
    compiled = std::make_shared<const CompiledModel>(std::move(dense));
  }
  double compile_seconds = compile_watch.ElapsedSeconds();
  if (obs::Enabled()) {
    static obs::LatencyHistogram* compile_hist =
        obs::GetHistogram("slimfast_core_compile_seconds");
    compile_hist->RecordSeconds(compile_seconds);
  }
  if (obs::TraceRecorder::Global().enabled()) {
    // Reconstruct the span from the stopwatch reading: a scoped
    // TraceSpan here would also cover the learning stages below.
    const auto end = std::chrono::steady_clock::now();
    obs::TraceRecorder::Global().RecordComplete(
        "core.compile",
        end - std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(compile_seconds)),
        end);
  }
  return FitWithStructure(dataset, split, seed, std::move(instance),
                          std::move(compiled), /*warm_weights=*/nullptr,
                          exec, compile_seconds);
}

Result<SlimFastFit> SlimFast::FitCompiled(
    const Dataset& dataset, const TrainTestSplit& split, uint64_t seed,
    std::shared_ptr<const CompiledInstance> instance,
    const std::vector<double>* warm_weights, Executor* exec) const {
  if (instance == nullptr) {
    return Status::InvalidArgument("FitCompiled requires an instance");
  }
  std::shared_ptr<const CompiledModel> compiled = instance->model;
  return FitWithStructure(dataset, split, seed, std::move(instance),
                          std::move(compiled), warm_weights, exec,
                          /*compile_seconds=*/0.0);
}

Result<SlimFastFit> SlimFast::FitWithStructure(
    const Dataset& dataset, const TrainTestSplit& split, uint64_t seed,
    std::shared_ptr<const CompiledInstance> instance,
    std::shared_ptr<const CompiledModel> compiled,
    const std::vector<double>* warm_weights, Executor* exec,
    double compile_seconds) const {
  obs::TraceSpan learn_span("core.learn");
  OptimizerDecision decision;
  Algorithm algorithm = options_.algorithm;
  if (algorithm == Algorithm::kAuto) {
    decision = DecideAlgorithm(dataset, split, compiled->layout.num_params,
                               options_.optimizer);
    algorithm = decision.algorithm;
  } else {
    decision.algorithm = algorithm;
  }

  // Warm start: seed from the previous fit's weights and shrink the
  // learning budget. A layout mismatch (the parameter universe changed)
  // silently falls back to a cold fit — correctness first.
  const bool warm =
      options_.warm_start.enabled && warm_weights != nullptr &&
      warm_weights->size() ==
          static_cast<size_t>(compiled->layout.num_params);
  ErmOptions erm_options = options_.erm;
  EmOptions em_options = options_.em;
  if (warm) {
    erm_options.epochs =
        WarmBudget(erm_options.epochs, options_.warm_start.budget_scale,
                   options_.warm_start.min_erm_epochs);
    // The warm cap lives in its own field: EM's inversion-guard retry is
    // a cold restart and must keep the full max_iterations budget.
    em_options.warm_max_iterations =
        WarmBudget(em_options.max_iterations,
                   options_.warm_start.budget_scale,
                   options_.warm_start.min_em_iterations);
  }

  Stopwatch learn_watch;
  SlimFastModel model(compiled);
  if (warm) model.SetWeights(*warm_weights);
  const CompiledInstance* inst = instance.get();
  Rng rng(seed);
  int32_t learn_iterations = 0;
  bool learn_converged = false;
  double learn_objective = 0.0;
  if (algorithm == Algorithm::kErm) {
    ErmLearner learner(erm_options);
    auto stats = learner.Fit(dataset, split.train_objects, &model, &rng,
                             exec, inst);
    if (!stats.ok()) {
      // No usable ground truth for ERM (e.g. 0% training data with a
      // forced-ERM preset): fall back to EM rather than failing the run.
      EmLearner em(em_options);
      SLIMFAST_ASSIGN_OR_RETURN(EmStats em_stats,
                                em.Fit(dataset, split.train_objects, &model,
                                       &rng, exec, inst, warm));
      learn_iterations = em_stats.iterations;
      learn_converged = em_stats.converged;
      learn_objective = em_stats.final_expected_nll;
      algorithm = Algorithm::kEm;
    } else {
      const FitStats& erm_stats = stats.ValueOrDie();
      learn_iterations = erm_stats.epochs;
      learn_converged = erm_stats.converged;
      learn_objective = erm_stats.final_loss;
    }
  } else {
    EmLearner learner(em_options);
    SLIMFAST_ASSIGN_OR_RETURN(
        EmStats em_stats,
        learner.Fit(dataset, split.train_objects, &model, &rng, exec, inst,
                    warm));
    learn_iterations = em_stats.iterations;
    learn_converged = em_stats.converged;
    learn_objective = em_stats.final_expected_nll;
  }

  const double learn_seconds = learn_watch.ElapsedSeconds();
  if (obs::Enabled()) {
    // Per-algorithm learn timings: EM runs ~200x longer than a warm ERM
    // relearn, so folding them into one histogram would bury the signal
    // the relearn scheduler needs.
    static obs::LatencyHistogram* erm_hist = obs::GetHistogram(
        "slimfast_core_learn_seconds{algorithm=\"erm\"}");
    static obs::LatencyHistogram* em_hist = obs::GetHistogram(
        "slimfast_core_learn_seconds{algorithm=\"em\"}");
    (algorithm == Algorithm::kErm ? erm_hist : em_hist)
        ->RecordSeconds(learn_seconds);
  }
  SlimFastFit fit{std::move(model), decision, algorithm, compile_seconds,
                  learn_seconds, std::move(instance), warm};
  fit.learn_iterations = learn_iterations;
  fit.learn_converged = learn_converged;
  fit.learn_objective = learn_objective;
  return fit;
}

Result<FusionOutput> SlimFast::Run(const Dataset& dataset,
                                   const TrainTestSplit& split,
                                   uint64_t seed) {
  Executor exec(options_.exec);
  SLIMFAST_ASSIGN_OR_RETURN(SlimFastFit fit,
                            Fit(dataset, split, seed, &exec));

  Stopwatch infer_watch;
  FusionOutput output;
  output.method_name = name_;
  output.detail = fit.decision.ToString();

  if (options_.inference == InferenceEngine::kExact) {
    output.predicted_values = fit.model.PredictAll();
  } else {
    SLIMFAST_ASSIGN_OR_RETURN(
        FactorGraphCompilation graph_compilation,
        CompileToFactorGraph(fit.model, dataset, &split));
    GibbsOptions gibbs_options;
    gibbs_options.burn_in = options_.gibbs_burn_in;
    gibbs_options.samples = options_.gibbs_samples;
    gibbs_options.chains = options_.gibbs_chains;
    GibbsSampler sampler(&graph_compilation.graph, gibbs_options);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    auto marginals = sampler.EstimateMarginals(&rng, &exec);
    auto map = graph_compilation.graph.MapFromMarginals(marginals);

    const CompiledModel& compiled = fit.model.compiled();
    output.predicted_values.assign(
        static_cast<size_t>(dataset.num_objects()), kNoValue);
    for (size_t r = 0; r < compiled.objects.size(); ++r) {
      const CompiledObject& row = compiled.objects[r];
      int32_t di = map[static_cast<size_t>(graph_compilation.row_vars[r])];
      output.predicted_values[static_cast<size_t>(row.object)] =
          row.domain[static_cast<size_t>(di)];
    }
  }
  output.source_accuracies = fit.model.AllSourceAccuracies();
  if (options_.calibrate_accuracies &&
      fit.algorithm_used == Algorithm::kErm &&
      !split.train_objects.empty()) {
    // Definition 7 calibration pass: warm-start a copy of the model and
    // fit the accuracy log-loss on the labeled claims. Only the reported
    // accuracies change; predictions keep the discriminative optimum.
    SlimFastModel calibrated(fit.model.shared_compiled());
    calibrated.SetWeights(fit.model.weights());
    ErmOptions calibration = options_.erm;
    calibration.loss = ErmLoss::kAccuracyLogLoss;
    calibration.batch = false;
    calibration.epochs = std::max<int32_t>(30, calibration.epochs / 2);
    ErmLearner learner(calibration);
    auto examples =
        ErmLearner::ObservationExamples(dataset, split.train_objects);
    Rng rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
    auto stats = learner.FitAccuracyLoss(examples, &calibrated, &rng,
                                         fit.instance.get());
    if (stats.ok()) {
      output.source_accuracies = calibrated.AllSourceAccuracies();
    }
  }
  output.compile_seconds = fit.compile_seconds;
  output.learn_seconds = fit.learn_seconds;
  output.infer_seconds = infer_watch.ElapsedSeconds();
  return output;
}

namespace {
std::unique_ptr<SlimFast> MakeVariant(SlimFastOptions options,
                                      bool features, Algorithm algorithm,
                                      const char* name) {
  options.model.use_feature_weights = features;
  options.algorithm = algorithm;
  return std::make_unique<SlimFast>(options, name);
}
}  // namespace

std::unique_ptr<SlimFast> MakeSlimFast(SlimFastOptions options) {
  return MakeVariant(options, true, Algorithm::kAuto, "SLiMFast");
}
std::unique_ptr<SlimFast> MakeSlimFastErm(SlimFastOptions options) {
  return MakeVariant(options, true, Algorithm::kErm, "SLiMFast-ERM");
}
std::unique_ptr<SlimFast> MakeSlimFastEm(SlimFastOptions options) {
  return MakeVariant(options, true, Algorithm::kEm, "SLiMFast-EM");
}
std::unique_ptr<SlimFast> MakeSourcesErm(SlimFastOptions options) {
  return MakeVariant(options, false, Algorithm::kErm, "Sources-ERM");
}
std::unique_ptr<SlimFast> MakeSourcesEm(SlimFastOptions options) {
  return MakeVariant(options, false, Algorithm::kEm, "Sources-EM");
}

}  // namespace slimfast
