#ifndef SLIMFAST_CORE_OPTIONS_H_
#define SLIMFAST_CORE_OPTIONS_H_

#include <cstdint>

#include "exec/options.h"
#include "opt/schedule.h"

namespace slimfast {

/// Structural configuration of SLiMFast's probabilistic model (Sec. 3.2).
struct ModelConfig {
  /// Include per-source indicator weights w_s. Disabling them yields a
  /// pure feature model (used by the source-quality-initialization study).
  bool use_source_weights = true;
  /// Include domain-specific feature weights w_k. Disabling them recovers
  /// the Sources-ERM / Sources-EM variants of the paper.
  bool use_feature_weights = true;
  /// Enable the copying-sources extension (Appendix D): pairwise features
  /// firing when two correlated sources agree on a value the model rejects.
  bool use_copying_features = false;
  /// Copying: minimum number of agreeing co-observations for a source pair
  /// to get a pairwise feature.
  int32_t copying_min_agreements = 2;
  /// Copying: cap on the number of pairwise features (highest-agreement
  /// pairs win). 0 disables the cap.
  int64_t copying_max_pairs = 50000;
  /// Apply the multiclass vote correction log(|D_o| - 1) per matching
  /// claim (see CompiledObject::offsets). With more than two candidate
  /// values and wrong claims spread across them, a claim's correct
  /// Naive-Bayes vote is σ_s + log(|D_o| - 1) (ACCU's n factor); without
  /// the offset, sources whose agreement rate is below 0.5 but above
  /// chance would be treated as anti-informative. No effect on binary
  /// domains, where the model is exactly Eq. 4.
  bool multiclass_offset = true;

  /// Structural equality — the compilation cache keys on (dataset
  /// fingerprint, config), so two configs compare equal exactly when they
  /// compile any dataset identically.
  bool operator==(const ModelConfig&) const = default;
};

/// Which loss ERM minimizes.
enum class ErmLoss {
  /// Negative log-likelihood of labeled object values under the posterior
  /// of Eq. 4 — the paper's default ERM objective.
  kObjectPosterior,
  /// Per-observation accuracy log-loss of Definition 7: each claim on a
  /// labeled object is a binary (correct/incorrect) logistic example.
  kAccuracyLogLoss,
};

/// Options for the ERM learner (convex; SGD or batch proximal descent).
struct ErmOptions {
  ErmLoss loss = ErmLoss::kObjectPosterior;
  /// Full-batch proximal gradient descent instead of SGD. Batch mode gives
  /// exact sparsity patterns for the Lasso path.
  bool batch = false;
  /// Base step size η₀ of the learning-rate schedule.
  double learning_rate = 0.5;
  /// Epoch-wise decay shape applied to the base step size
  /// (see opt/schedule.h).
  LrDecay decay = LrDecay::kInvSqrt;
  /// Cold-start epoch budget (warm-started relearns run
  /// `WarmStartOptions::budget_scale` of it).
  int32_t epochs = 60;
  /// L2 penalty on all parameters. The default keeps weights bounded when
  /// ground truth is extremely scarce (a handful of labeled objects would
  /// otherwise be interpolated exactly).
  double l2 = 1e-4;
  /// L1 penalty on feature (and copying) parameters only; source-indicator
  /// weights are never L1-shrunk so that the model retains per-source
  /// flexibility (the paper regularizes the domain-feature weights).
  double l1 = 0.0;
  /// Per-coordinate AdaGrad step adaptation for SGD mode.
  bool use_adagrad = true;
  /// Convergence: relative loss change below tolerance for `patience`
  /// consecutive epochs stops early.
  double tolerance = 1e-7;
  int32_t patience = 3;
};

/// Options for the EM learner (semi-supervised, Sec. 3.2).
struct EmOptions {
  /// Cold-start cap on E-step/M-step rounds.
  int32_t max_iterations = 30;
  /// Iteration cap for a warm-started run; 0 falls back to
  /// max_iterations. Set by the facade from `WarmStartOptions` so the
  /// inversion-guard retry — a from-scratch cold run — keeps the full
  /// cold budget even inside a warm relearn.
  int32_t warm_max_iterations = 0;
  /// Soft EM uses posterior-weighted pseudo-labels; hard EM (the paper's
  /// E-step) uses MAP pseudo-labels.
  bool soft = false;
  /// Pseudo-label posterior mass below this is dropped in soft mode.
  double soft_min_weight = 1e-3;
  /// Initial source accuracy when no ground truth is available to fit an
  /// initial model.
  double init_accuracy = 0.7;
  /// ERM sub-solver configuration for the M-step (warm-started each round).
  ErmOptions m_step;
  /// Convergence on the expected log-likelihood.
  double tolerance = 1e-5;
  int32_t patience = 2;

  EmOptions() {
    m_step.epochs = 15;  // warm-started, so few epochs per M-step suffice
    // Mild sparsification of feature weights fit against pseudo-labels:
    // with hundreds of boolean features and noisy imputed targets,
    // unregularized feature weights can destabilize the E-step.
    m_step.l1 = 0.005;
  }
};

/// Learning algorithm selector.
enum class Algorithm {
  kErm,
  kEm,
  kAuto,  ///< let SLiMFast's optimizer decide (Sec. 4.3)
};

/// Options for SLiMFast's optimizer (Algorithm 2).
struct OptimizerOptions {
  /// Threshold τ on the ERM generalization bound; below it ERM is chosen
  /// outright. The paper uses 0.1.
  double tau = 0.1;
  /// Minimum estimated accuracy margin δ̂ = Â - 0.5 for EM's information
  /// units to count. Theorem 3 bounds EM's error by O(1/(|S|δ) + ...), so
  /// as the margin vanishes the unlabeled observations carry no reliable
  /// information; below this margin the optimizer zeroes the EM units
  /// (the adversarial/near-random regime, e.g. Stocks).
  double min_accuracy_margin = 0.03;
  /// Minimum mean pairwise co-observation count per source for the
  /// agreement-based accuracy estimate (and hence EM's units) to be
  /// trusted. Theorem 3's analysis assumes ≥2 observations per object and
  /// enough overlap to estimate agreement; at ~1 claim per source
  /// (Genomics) the pairwise evidence is a handful of ±1 coin flips.
  double min_coobservations = 20.0;
};

/// Warm-start refinement schedule for incremental relearning.
///
/// A long-running `FusionSession` absorbs an ingest batch, delta-compiles
/// the instance, and relearns. The previous fit's weight vector is a
/// near-optimal starting point — the batch perturbed only part of the
/// model — so the relearn seeds from it and runs a short refinement
/// schedule instead of the full cold-start epoch budget.
struct WarmStartOptions {
  /// Master switch. When off (the default), `SlimFast::FitCompiled`
  /// ignores any previous weights and runs the cold schedule, so batch
  /// runs are untouched by this feature.
  bool enabled = false;
  /// Fraction of the cold-start budget a warm refinement runs: ERM epochs
  /// and EM iterations are scaled by this factor (floors below).
  double budget_scale = 0.25;
  /// Minimum ERM epochs of a warm refinement.
  int32_t min_erm_epochs = 8;
  /// Minimum EM iterations of a warm refinement.
  int32_t min_em_iterations = 2;
};

/// Inference engine choice.
enum class InferenceEngine {
  /// Exact per-object posterior (the base model factorizes per object).
  kExact,
  /// Gibbs sampling over the compiled factor graph (DeepDive-style); used
  /// to validate the factor-graph path and for non-factorized extensions.
  kGibbs,
};

/// Top-level options of the SLiMFast facade.
struct SlimFastOptions {
  ModelConfig model;
  Algorithm algorithm = Algorithm::kAuto;
  OptimizerOptions optimizer;
  ErmOptions erm;
  EmOptions em;
  InferenceEngine inference = InferenceEngine::kExact;
  /// Gibbs parameters when inference == kGibbs. With more than one chain,
  /// `gibbs_chains` independent seeded chains run (in parallel when
  /// exec.threads > 1) and their marginals are averaged in chain order.
  int32_t gibbs_burn_in = 50;
  int32_t gibbs_samples = 200;
  int32_t gibbs_chains = 1;
  /// After an ERM fit, re-calibrate the *reported* source accuracies with
  /// a warm-started accuracy-log-loss fit (Definition 7) on the labeled
  /// observations. The discriminative object loss can leave accuracies
  /// uncalibrated once the labeled posteriors saturate (weights stop
  /// moving while A_s is still far from the empirical rate); predictions
  /// are unaffected — only FusionOutput::source_accuracies changes.
  bool calibrate_accuracies = true;
  /// Parallel execution engine configuration (src/exec/). Thread count
  /// never changes results: every parallel stage reduces per-shard
  /// accumulators in fixed shard order (see exec/parallel.h).
  ExecOptions exec;
  /// Learn over the columnar sparse representation (ObservationStore +
  /// CompiledInstance): gradients and E-step updates walk precompiled flat
  /// index ranges instead of the nested per-object vectors. Results are
  /// bit-identical to the legacy dense path (asserted per preset in
  /// determinism_test), which stays available for equivalence testing.
  bool use_sparse = true;
  /// Reuse compiled instances across fits of the same (dataset, model
  /// config) through the process-wide CompiledInstanceCache, so repeated
  /// runs — eval grids, bench loops, EM restarts — compile once. Only
  /// consulted when use_sparse is set; the dense path always recompiles.
  /// Lifetime note: the cache retains up to its LRU capacity (8) of
  /// compiled instances — each holds a columnar copy of the dataset's
  /// observations — for the life of the process. Long-running services
  /// cycling through many large datasets should call
  /// CompiledInstanceCache::Global().Clear() when done with a dataset, or
  /// set this to false to keep compilation scoped to the fit.
  bool use_compilation_cache = true;
  /// Warm-start refinement for incremental relearning (see
  /// `WarmStartOptions`). Consulted by `SlimFast::FitCompiled` when the
  /// caller supplies a previous weight vector; plain `Run`/`Fit` calls
  /// never warm-start.
  WarmStartOptions warm_start;
};

}  // namespace slimfast

#endif  // SLIMFAST_CORE_OPTIONS_H_
