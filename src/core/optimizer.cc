#include "core/optimizer.h"

#include <cmath>
#include <sstream>

#include "opt/matrix_completion.h"
#include "util/math.h"
#include "util/strings.h"

namespace slimfast {

std::string OptimizerDecision::ToString() const {
  std::ostringstream out;
  out << "decision="
      << (algorithm == Algorithm::kErm ? "ERM" : "EM")
      << (bound_fast_path ? " (bound fast-path)" : "")
      << " erm_bound=" << FormatDouble(erm_bound, 4)
      << " erm_units=" << FormatDouble(erm_units, 1)
      << " em_units=" << FormatDouble(em_units, 1)
      << " est_avg_accuracy=" << FormatDouble(estimated_avg_accuracy, 3);
  return out.str();
}

double EmUnits(const Dataset& dataset, double avg_accuracy) {
  double total_units = 0.0;
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& claims = dataset.ClaimsOnObject(o);
    if (claims.empty()) continue;
    int64_t m = static_cast<int64_t>(claims.size());
    int64_t num_distinct =
        static_cast<int64_t>(dataset.DomainOf(o).size());
    if (num_distinct < 1) continue;
    // Majority vote wins when the true value gets more than m/|D_o| votes.
    int64_t threshold = m / num_distinct;
    double pe = 1.0 - BinomialCdf(m, threshold, avg_accuracy);
    if (pe >= 0.5) {
      total_units += static_cast<double>(m) * (1.0 - BinaryEntropyBits(pe));
    }
  }
  return total_units;
}

double ErmUnits(const Dataset& dataset, const TrainTestSplit& split) {
  return static_cast<double>(CountLabeledObservations(dataset, split));
}

OptimizerDecision DecideAlgorithm(const Dataset& dataset,
                                  const TrainTestSplit& split,
                                  int32_t num_params,
                                  const OptimizerOptions& options) {
  OptimizerDecision decision;
  double g = ErmUnits(dataset, split);
  decision.erm_units = g;

  if (dataset.num_observations() == 0) {
    decision.algorithm = Algorithm::kErm;
    return decision;
  }
  if (g <= 0.0) {
    // No ground truth at all: ERM is undefined, EM is the only option.
    decision.algorithm = Algorithm::kEm;
    decision.erm_bound = std::numeric_limits<double>::infinity();
    decision.estimated_avg_accuracy = EstimateAccuracyForUnits(dataset);
    decision.em_units = EmUnits(dataset, decision.estimated_avg_accuracy);
    return decision;
  }

  decision.erm_bound = std::sqrt(static_cast<double>(num_params) / g) *
                       std::log(std::max(2.0, g));
  if (decision.erm_bound < options.tau) {
    decision.algorithm = Algorithm::kErm;
    decision.bound_fast_path = true;
    return decision;
  }

  decision.estimated_avg_accuracy = EstimateAccuracyForUnits(dataset);
  // Mean pairwise co-observations per source: how much evidence the
  // agreement estimate rests on.
  double coobservations = 0.0;
  if (dataset.num_sources() > 0) {
    for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
      double m = static_cast<double>(dataset.ClaimsOnObject(o).size());
      coobservations += m * (m - 1.0);
    }
    coobservations /= static_cast<double>(dataset.num_sources());
  }
  // Theorem 3's error bound scales as 1/δ and assumes enough overlap to
  // estimate agreement; with a vanishing estimated margin or almost no
  // pairwise evidence, the unlabeled observations are uninformative for EM.
  if (decision.estimated_avg_accuracy - 0.5 < options.min_accuracy_margin ||
      coobservations < options.min_coobservations) {
    decision.em_units = 0.0;
  } else {
    decision.em_units = EmUnits(dataset, decision.estimated_avg_accuracy);
  }
  decision.algorithm =
      decision.erm_units < decision.em_units ? Algorithm::kEm
                                             : Algorithm::kErm;
  return decision;
}

double EstimateAccuracyForUnits(const Dataset& dataset) {
  AgreementMatrix matrix(dataset);
  if (matrix.TotalOverlap() == 0) return 0.5;
  // Overlap-weighted mean agreement rate q̄, inverted through the uniform
  // chance-agreement model
  //   q(A) = A² + (1 - A)² / (n̄ - 1),
  // the multiclass generalization of the paper's E[X] = (2A - 1)² identity
  // (n̄ = 2 recovers it exactly). If no accuracy above 0.5 explains q̄ —
  // sources agree no more than chance — the instance is adversarial or
  // uninformative and the estimate degrades to 0.5.
  double q = matrix.MeanAgreementRate();
  double mean_domain = 0.0;
  int64_t conflicted = 0;
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    if (dataset.ClaimsOnObject(o).size() < 2) continue;
    mean_domain += static_cast<double>(dataset.DomainOf(o).size());
    ++conflicted;
  }
  if (conflicted == 0) return 0.5;
  mean_domain /= static_cast<double>(conflicted);
  double n1 = std::max(1.0, mean_domain - 1.0);
  // Solve (1 + 1/n1) A² - (2/n1) A + (1/n1 - q) = 0 for the root >= 0.5.
  double a = 1.0 + 1.0 / n1;
  double b = -2.0 / n1;
  double c = 1.0 / n1 - q;
  double disc = b * b - 4.0 * a * c;
  if (disc <= 0.0) return 0.5;
  double accuracy = (-b + std::sqrt(disc)) / (2.0 * a);
  return Clamp(accuracy, 0.5, 1.0 - 1e-6);
}

}  // namespace slimfast
