#ifndef SLIMFAST_CORE_EM_H_
#define SLIMFAST_CORE_EM_H_

#include <vector>

#include "core/erm.h"
#include "core/model.h"
#include "core/options.h"
#include "data/dataset.h"
#include "util/random.h"
#include "util/result.h"

namespace slimfast {

struct CompiledInstance;

/// Statistics of an EM run.
struct EmStats {
  int32_t iterations = 0;
  bool converged = false;
  /// Expected negative log-likelihood at the last E-step (the objective
  /// tracked for convergence).
  double final_expected_nll = 0.0;
};

/// Semi-supervised expectation maximization (Sec. 3.2).
///
/// E-step: compute the posterior of every unlabeled object under the
/// current weights; labeled (ground-truth) objects stay clamped — exactly
/// the evidence semantics of the compiled factor graph. The paper's E-step
/// assigns MAP values (hard EM, the default); soft EM keeps the full
/// posterior as example weights.
///
/// M-step: given the (hard or soft) assignments, the likelihood of the
/// observations factors per claim as Bernoulli(A_s); the M-step therefore
/// fits the accuracy log-loss (Definition 7) over all claims, warm-started
/// from the previous weights. This matches the paper's "parameters are
/// estimated via their maximum likelihood values given v_o" and, unlike
/// re-fitting the object posterior on its own MAP labels, makes real
/// progress each round (the per-claim loss is not saturated by the model's
/// own predictions).
///
/// Initialization: with no usable ground truth, source weights start at
/// logit(init_accuracy) so the first E-step reduces to (weighted) majority
/// vote; with ground truth, an initial ERM fit on the labels seeds the
/// weights.
class EmLearner {
 public:
  explicit EmLearner(EmOptions options) : options_(options) {}

  const EmOptions& options() const { return options_; }

  /// Runs EM on `model` in place. `train_objects` may be empty
  /// (fully unsupervised). The E-step's per-object posterior imputation is
  /// sharded across `exec` (null = serial) with a deterministic reduce, so
  /// thread count never changes the fit. When `instance` is non-null the
  /// E-step and M-step walk its flat sparse ranges; results are
  /// bit-identical to the dense path (see core/row_access.h).
  ///
  /// With `warm_start` set, the model's current weights are taken as the
  /// starting point — initialization (the logit-prior source weights and
  /// the label-seeded fit) is skipped for the first run, so a
  /// warm-started relearn refines the previous fit instead of restarting.
  /// The warm run honors `EmOptions::warm_max_iterations`; the
  /// inversion-guard retry, if triggered, still initializes cold and
  /// keeps the full cold iteration budget.
  Result<EmStats> Fit(const Dataset& dataset,
                      const std::vector<ObjectId>& train_objects,
                      SlimFastModel* model, Rng* rng,
                      Executor* exec = nullptr,
                      const CompiledInstance* instance = nullptr,
                      bool warm_start = false) const;

 private:
  /// One complete EM run (Fit adds the inversion-guard restart on top).
  Result<EmStats> FitOnce(const Dataset& dataset,
                          const std::vector<ObjectId>& train_objects,
                          SlimFastModel* model, Rng* rng,
                          bool seed_from_labels, bool warm_start,
                          Executor* exec,
                          const CompiledInstance* instance) const;

  /// MAP accuracy of `model` on the clamped training objects.
  static double TrainAccuracy(const Dataset& dataset,
                              const std::vector<ObjectId>& train_objects,
                              const SlimFastModel& model);

  /// Seeds weights before the first E-step.
  void Initialize(const Dataset& dataset,
                  const std::vector<LabeledExample>& labeled,
                  const std::vector<ObjectId>& train_objects,
                  SlimFastModel* model, Rng* rng,
                  const CompiledInstance* instance) const;

  EmOptions options_;
};

}  // namespace slimfast

#endif  // SLIMFAST_CORE_EM_H_
