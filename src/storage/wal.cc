#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/event_log.h"
#include "obs/registry.h"
#include "storage/codec.h"
#include "storage/crc32.h"

namespace slimfast {

namespace {

// "SLFWAL01" in little-endian byte order.
constexpr uint64_t kWalMagic = 0x31304C4157464C53ULL;
constexpr int64_t kSegmentHeaderBytes = 16;
// Sanity bound on one record's payload; anything larger is treated as a
// torn/garbage length field, not an allocation request.
constexpr uint32_t kMaxRecordPayloadBytes = 1u << 30;

std::string SegmentName(uint64_t first_sequence) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020llu.seg",
                static_cast<unsigned long long>(first_sequence));
  return name;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status WriteFully(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wal write: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(ErrnoMessage("open wal dir", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError(ErrnoMessage("fsync wal dir", dir));
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("cannot read " + path);
  return bytes;
}

std::string EncodeRecordPayload(uint64_t sequence,
                                const ObservationBatch& batch) {
  std::string payload;
  payload.reserve(16 + batch.observations.size() * 12 +
                  batch.truths.size() * 8);
  AppendU64(&payload, sequence);
  AppendU32(&payload, static_cast<uint32_t>(batch.observations.size()));
  AppendU32(&payload, static_cast<uint32_t>(batch.truths.size()));
  for (const Observation& obs : batch.observations) {
    AppendI32(&payload, obs.object);
    AppendI32(&payload, obs.source);
    AppendI32(&payload, obs.value);
  }
  for (const TruthLabel& label : batch.truths) {
    AppendI32(&payload, label.object);
    AppendI32(&payload, label.value);
  }
  return payload;
}

bool DecodeRecordPayload(const char* data, size_t size, WalRecord* record) {
  ByteReader in(data, size);
  uint32_t num_observations = 0;
  uint32_t num_truths = 0;
  if (!in.ReadU64(&record->sequence) || !in.ReadU32(&num_observations) ||
      !in.ReadU32(&num_truths)) {
    return false;
  }
  if (num_observations > in.remaining() / 12 ||
      num_truths > in.remaining() / 8) {
    return false;
  }
  record->batch.observations.resize(num_observations);
  record->batch.truths.resize(num_truths);
  for (Observation& obs : record->batch.observations) {
    if (!in.ReadI32(&obs.object) || !in.ReadI32(&obs.source) ||
        !in.ReadI32(&obs.value)) {
      return false;
    }
  }
  for (TruthLabel& label : record->batch.truths) {
    if (!in.ReadI32(&label.object) || !in.ReadI32(&label.value)) {
      return false;
    }
  }
  return in.remaining() == 0;
}

/// Parse of one segment's bytes: the intact prefix, and whether a torn
/// suffix follows it. Record contiguity within the segment (first record
/// matches the declared header sequence, subsequent records increment by
/// one) is enforced here; CRC-valid records that break it count as torn.
struct SegmentParse {
  uint64_t declared_first_sequence = 0;
  int64_t record_count = 0;
  uint64_t last_sequence = 0;  // valid only when record_count > 0
  int64_t valid_bytes = 0;
  bool torn = false;
  /// Filled only when `collect` was set.
  std::vector<WalRecord> records;
};

Result<SegmentParse> ParseSegment(const std::string& bytes,
                                  const std::string& path, bool collect) {
  SegmentParse parse;
  if (static_cast<int64_t>(bytes.size()) < kSegmentHeaderBytes) {
    // A header torn mid-write: nothing in the file is trustworthy, but
    // nothing in it was ever acknowledged either.
    parse.torn = true;
    return parse;
  }
  ByteReader header(bytes.data(), static_cast<size_t>(kSegmentHeaderBytes));
  uint64_t magic = 0;
  header.ReadU64(&magic);
  header.ReadU64(&parse.declared_first_sequence);
  if (magic != kWalMagic) {
    return Status::IOError("wal segment " + path + " has a bad magic");
  }
  parse.valid_bytes = kSegmentHeaderBytes;

  size_t pos = static_cast<size_t>(kSegmentHeaderBytes);
  while (bytes.size() - pos >= 8) {
    ByteReader frame(bytes.data() + pos, 8);
    uint32_t payload_len = 0;
    uint32_t crc = 0;
    frame.ReadU32(&payload_len);
    frame.ReadU32(&crc);
    if (payload_len > kMaxRecordPayloadBytes ||
        bytes.size() - pos - 8 < payload_len) {
      parse.torn = true;
      break;
    }
    const char* payload = bytes.data() + pos + 8;
    if (Crc32(payload, payload_len) != crc) {
      parse.torn = true;
      break;
    }
    WalRecord record;
    if (!DecodeRecordPayload(payload, payload_len, &record)) {
      parse.torn = true;
      break;
    }
    const uint64_t expected =
        parse.record_count == 0 ? parse.declared_first_sequence
                                : parse.last_sequence + 1;
    if (record.sequence != expected) {
      parse.torn = true;
      break;
    }
    parse.last_sequence = record.sequence;
    ++parse.record_count;
    pos += 8 + payload_len;
    parse.valid_bytes = static_cast<int64_t>(pos);
    if (collect) parse.records.push_back(std::move(record));
  }
  if (pos < bytes.size() &&
      parse.valid_bytes == static_cast<int64_t>(pos)) {
    parse.torn = true;  // trailing fragment shorter than a frame header
  }
  return parse;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (!std::filesystem::exists(dir)) return segments;  // empty log
    return Status::IOError("cannot list wal dir " + dir + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 || name.size() != 28 ||
        name.compare(24, 4, ".seg") != 0) {
      continue;
    }
    uint64_t first = 0;
    bool numeric = true;
    for (size_t i = 4; i < 24; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      first = first * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (!numeric) continue;
    segments.emplace_back(first, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

/// Shared walk behind ScanWal and ReplayWal: parses every segment in
/// order, enforces cross-segment contiguity, and hands intact records to
/// `fn` when non-null.
Result<WalScan> WalkWal(const std::string& dir,
                        const std::function<Status(WalRecord)>* fn) {
  WalScan scan;
  SLIMFAST_ASSIGN_OR_RETURN(auto listed, ListSegments(dir));
  uint64_t expected_next = 0;  // 0 = no records seen yet
  for (size_t i = 0; i < listed.size(); ++i) {
    const bool final_segment = i + 1 == listed.size();
    const std::string& path = listed[i].second;
    SLIMFAST_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
    SLIMFAST_ASSIGN_OR_RETURN(SegmentParse parse,
                              ParseSegment(bytes, path, fn != nullptr));
    if (parse.torn && !final_segment) {
      return Status::IOError("wal segment " + path +
                             " is corrupt before the final segment");
    }
    if (parse.valid_bytes >= kSegmentHeaderBytes) {
      if (parse.declared_first_sequence != listed[i].first) {
        return Status::IOError("wal segment " + path +
                               " declares a sequence that disagrees with "
                               "its file name");
      }
      if (expected_next != 0 &&
          parse.declared_first_sequence != expected_next) {
        return Status::IOError(
            "wal segment " + path + " starts at sequence " +
            std::to_string(parse.declared_first_sequence) + ", expected " +
            std::to_string(expected_next));
      }
    }
    if (parse.record_count > 0) {
      expected_next = parse.last_sequence + 1;
    } else if (expected_next == 0 &&
               parse.valid_bytes >= kSegmentHeaderBytes) {
      expected_next = parse.declared_first_sequence;
    }
    WalSegment segment;
    segment.path = path;
    segment.first_sequence = listed[i].first;
    segment.record_count = parse.record_count;
    segment.valid_bytes = parse.valid_bytes;
    scan.segments.push_back(std::move(segment));
    if (final_segment) scan.tail_torn = parse.torn;
    if (fn != nullptr) {
      for (WalRecord& record : parse.records) {
        SLIMFAST_RETURN_NOT_OK((*fn)(std::move(record)));
      }
    }
  }
  scan.next_sequence = expected_next == 0 ? 1 : expected_next;
  return scan;
}

}  // namespace

Result<WalScan> ScanWal(const std::string& dir) {
  return WalkWal(dir, nullptr);
}

Status ReplayWal(const std::string& dir, uint64_t after_sequence,
                 const std::function<Status(const WalRecord&)>& fn) {
  static obs::LatencyHistogram* replay_hist =
      obs::GetHistogram("slimfast_storage_wal_replay_seconds");
  obs::ScopedTimer timer(replay_hist);
  obs::ShardedCounter* replayed =
      obs::Enabled()
          ? obs::GetCounter("slimfast_storage_wal_replay_records_total")
          : nullptr;
  bool saw_record = false;
  std::function<Status(WalRecord)> deliver =
      [&](WalRecord record) -> Status {
    if (!saw_record) {
      saw_record = true;
      if (record.sequence > after_sequence + 1) {
        return Status::IOError(
            "wal gap: first record has sequence " +
            std::to_string(record.sequence) + " but replay needs " +
            std::to_string(after_sequence + 1));
      }
    }
    if (record.sequence <= after_sequence) return Status::OK();
    if (replayed != nullptr) replayed->Increment();
    return fn(record);
  };
  return WalkWal(dir, &deliver).status();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    std::string dir, WalOptions options, uint64_t min_next_sequence) {
  if (options.fsync_every_n < 1) options.fsync_every_n = 1;
  if (options.segment_bytes < kSegmentHeaderBytes + 1) {
    options.segment_bytes = kSegmentHeaderBytes + 1;
  }
  if (min_next_sequence < 1) min_next_sequence = 1;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir " + dir + ": " +
                           ec.message());
  }
  SLIMFAST_ASSIGN_OR_RETURN(WalScan scan, ScanWal(dir));

  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(dir), options));
  writer->next_sequence_ = std::max(scan.next_sequence, min_next_sequence);
  for (const WalSegment& segment : scan.segments) {
    writer->segments_.emplace_back(segment.first_sequence, segment.path);
  }

  if (!scan.segments.empty()) {
    WalSegment& tail = scan.segments.back();
    if (tail.valid_bytes < kSegmentHeaderBytes) {
      // Header torn mid-write: recreate the segment wholesale.
      std::filesystem::remove(tail.path, ec);
      if (ec) {
        return Status::IOError("cannot remove torn wal segment " +
                               tail.path + ": " + ec.message());
      }
      writer->segments_.pop_back();
    } else {
      int fd = ::open(tail.path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) {
        return Status::IOError(ErrnoMessage("open wal segment", tail.path));
      }
      if (scan.tail_torn) {
        if (::ftruncate(fd, static_cast<off_t>(tail.valid_bytes)) != 0) {
          ::close(fd);
          return Status::IOError(
              ErrnoMessage("truncate torn wal tail of", tail.path));
        }
        if (obs::Enabled()) {
          obs::EventLog::Global().Emit(
              obs::EventSeverity::kWarn, "wal", -1,
              "torn tail healed segment=" + tail.path + " truncated_to=" +
                  std::to_string(tail.valid_bytes) + " bytes");
        }
      }
      if (::lseek(fd, 0, SEEK_END) < 0) {
        ::close(fd);
        return Status::IOError(ErrnoMessage("seek wal segment", tail.path));
      }
      writer->fd_ = fd;
      writer->segment_bytes_written_ = tail.valid_bytes;
      writer->segment_records_ = tail.record_count;
    }
  }
  if (writer->fd_ < 0) {
    SLIMFAST_RETURN_NOT_OK(writer->CreateSegment(writer->next_sequence_));
  } else if (writer->next_sequence_ > scan.next_sequence) {
    // The log was truncated past a checkpoint the caller still holds;
    // never append a discontiguous sequence into an old segment.
    SLIMFAST_RETURN_NOT_OK(writer->Rotate());
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (options_.fsync != WalFsync::kNone) ::fsync(fd_);
    ::close(fd_);
  }
}

Status WalWriter::CreateSegment(uint64_t first_sequence) {
  const std::string path =
      dir_ + "/" + SegmentName(first_sequence);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("create wal segment", path));
  }
  std::string header;
  AppendU64(&header, kWalMagic);
  AppendU64(&header, first_sequence);
  Status written = WriteFully(fd, header.data(), header.size());
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  fd_ = fd;
  segment_bytes_written_ = kSegmentHeaderBytes;
  segment_records_ = 0;
  segments_.emplace_back(first_sequence, path);
  if (options_.fsync != WalFsync::kNone) {
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync wal segment", path));
    }
    SLIMFAST_RETURN_NOT_OK(FsyncDir(dir_));
  }
  return Status::OK();
}

Status WalWriter::CloseSegment() {
  if (fd_ < 0) return Status::OK();
  Status synced = Status::OK();
  if (options_.fsync != WalFsync::kNone && ::fsync(fd_) != 0) {
    synced = Status::IOError(std::string("fsync wal segment: ") +
                             std::strerror(errno));
  }
  ::close(fd_);
  fd_ = -1;
  return synced;
}

Status WalWriter::MaybeFsync() {
  switch (options_.fsync) {
    case WalFsync::kNone:
      return Status::OK();
    case WalFsync::kEveryBatch:
      return Sync();
    case WalFsync::kEveryN:
      if (++records_since_sync_ >= options_.fsync_every_n) {
        return Sync();
      }
      return Status::OK();
  }
  return Status::OK();
}

Result<uint64_t> WalWriter::Append(const ObservationBatch& batch) {
  static obs::LatencyHistogram* append_hist =
      obs::GetHistogram("slimfast_storage_wal_append_seconds");
  static obs::ShardedCounter* bytes_total =
      obs::GetCounter("slimfast_storage_wal_bytes_written_total");
  obs::ScopedTimer timer(append_hist);
  if (poisoned_) {
    return Status::IOError(
        "wal writer is poisoned by an earlier write failure");
  }
  if (segment_bytes_written_ >= options_.segment_bytes &&
      segment_records_ > 0) {
    SLIMFAST_RETURN_NOT_OK(Rotate());
  }
  const uint64_t sequence = next_sequence_;
  const std::string payload = EncodeRecordPayload(sequence, batch);
  std::string record;
  record.reserve(8 + payload.size());
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU32(&record, Crc32(payload.data(), payload.size()));
  record += payload;
  Status written = WriteFully(fd_, record.data(), record.size());
  if (!written.ok()) {
    poisoned_ = true;
    return written;
  }
  segment_bytes_written_ += static_cast<int64_t>(record.size());
  if (obs::Enabled()) bytes_total->Add(static_cast<int64_t>(record.size()));
  ++segment_records_;
  ++next_sequence_;
  SLIMFAST_RETURN_NOT_OK(MaybeFsync());
  return sequence;
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::OK();
  static obs::LatencyHistogram* fsync_hist =
      obs::GetHistogram("slimfast_storage_wal_fsync_seconds");
  obs::ScopedTimer timer(fsync_hist);
  if (::fsync(fd_) != 0) {
    return Status::IOError(std::string("fsync wal segment: ") +
                           std::strerror(errno));
  }
  records_since_sync_ = 0;
  return Status::OK();
}

Status WalWriter::Rotate() {
  if (poisoned_) {
    return Status::IOError(
        "wal writer is poisoned by an earlier write failure");
  }
  if (segment_records_ == 0) return Status::OK();  // already fresh
  if (obs::Enabled()) {
    static obs::ShardedCounter* rotations =
        obs::GetCounter("slimfast_storage_wal_rotate_total");
    rotations->Increment();
    obs::EventLog::Global().Emit(
        obs::EventSeverity::kInfo, "wal", -1,
        "segment rotated next_sequence=" +
            std::to_string(next_sequence_) +
            " records=" + std::to_string(segment_records_));
  }
  SLIMFAST_RETURN_NOT_OK(CloseSegment());
  records_since_sync_ = 0;
  return CreateSegment(next_sequence_);
}

Status WalWriter::RemoveSegmentsBefore(uint64_t sequence) {
  while (segments_.size() > 1 && segments_[1].first <= sequence) {
    std::error_code ec;
    std::filesystem::remove(segments_.front().second, ec);
    if (ec) {
      return Status::IOError("cannot remove wal segment " +
                             segments_.front().second + ": " +
                             ec.message());
    }
    segments_.erase(segments_.begin());
  }
  if (options_.fsync != WalFsync::kNone) {
    SLIMFAST_RETURN_NOT_OK(FsyncDir(dir_));
  }
  return Status::OK();
}

}  // namespace slimfast
