#ifndef SLIMFAST_STORAGE_CRC32_H_
#define SLIMFAST_STORAGE_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace slimfast {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
/// Every WAL record and snapshot file carries one so a torn or corrupted
/// write is detected before any of its content is trusted. Table-driven;
/// the 1 KiB table is built on first use.
inline uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace slimfast

#endif  // SLIMFAST_STORAGE_CRC32_H_
