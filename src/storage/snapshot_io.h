#ifndef SLIMFAST_STORAGE_SNAPSHOT_IO_H_
#define SLIMFAST_STORAGE_SNAPSHOT_IO_H_

#include <string>

#include "data/observation_store.h"
#include "storage/codec.h"
#include "util/result.h"

namespace slimfast {

/// On-disk snapshot container + the ObservationStore column sections.
///
/// A snapshot file is [u64 magic][payload][u32 crc32(payload)][u64
/// footer magic]. The payload is a caller-composed sequence of codec.h
/// sections (scalars and length-prefixed little-endian arrays). Files
/// are written atomically — temp file, fsync, rename — so a crashed
/// checkpoint leaves either the old snapshot or the new one, never a
/// half-written hybrid; the CRC + footer catch the rename-less torn
/// temp case and any later corruption.

/// Atomically writes `payload` (framed as above) to `path`.
Status WriteSnapshotFile(const std::string& path,
                         const std::string& payload);

/// Reads `path`, validates magic, footer, and CRC, and returns the raw
/// payload. NotFound when the file does not exist; IOError on any
/// framing or checksum failure.
Result<std::string> ReadSnapshotFile(const std::string& path);

/// Appends the store's primary columns (dimensions, claim arrays,
/// per-object offsets, truth, fingerprint) as payload sections — the
/// bulk-load serialization ReadStoreColumns reverses.
void AppendStoreColumns(const ObservationStore& store, std::string* out);

/// Reads the sections AppendStoreColumns wrote and rebuilds the store
/// via ObservationStore::FromColumns (which re-derives the by-source
/// index and domains and verifies the content fingerprint).
Result<ObservationStore> ReadStoreColumns(ByteReader* in);

}  // namespace slimfast

#endif  // SLIMFAST_STORAGE_SNAPSHOT_IO_H_
