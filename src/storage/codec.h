#ifndef SLIMFAST_STORAGE_CODEC_H_
#define SLIMFAST_STORAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace slimfast {

/// Fixed-width little-endian append/read primitives shared by the WAL
/// record format and the snapshot section format. Explicit byte-at-a-time
/// encoding: the on-disk layout must not depend on host endianness or
/// struct padding.

inline void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFFu);
  b[1] = static_cast<char>((v >> 8) & 0xFFu);
  b[2] = static_cast<char>((v >> 16) & 0xFFu);
  b[3] = static_cast<char>((v >> 24) & 0xFFu);
  out->append(b, 4);
}

inline void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

inline void AppendI32(std::string* out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

inline void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

inline void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Bounds-checked sequential reader over an in-memory byte span. Every
/// Read* returns false instead of reading past the end, so a truncated
/// payload surfaces as a decode failure, never as garbage values.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    const unsigned char* b =
        reinterpret_cast<const unsigned char*>(data_ + pos_);
    *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Array sections: a u64 element count followed by the packed
/// little-endian elements. The readers reject counts larger than the
/// remaining bytes could hold before allocating.

inline void AppendArray(std::string* out, const std::vector<int32_t>& v) {
  AppendU64(out, v.size());
  for (int32_t x : v) AppendI32(out, x);
}

inline void AppendArray(std::string* out, const std::vector<int64_t>& v) {
  AppendU64(out, v.size());
  for (int64_t x : v) AppendI64(out, x);
}

inline void AppendArray(std::string* out, const std::vector<double>& v) {
  AppendU64(out, v.size());
  for (double x : v) AppendF64(out, x);
}

inline bool ReadArray(ByteReader* in, std::vector<int32_t>* v) {
  uint64_t n = 0;
  if (!in->ReadU64(&n) || n > in->remaining() / 4) return false;
  v->resize(static_cast<size_t>(n));
  for (int32_t& x : *v) {
    if (!in->ReadI32(&x)) return false;
  }
  return true;
}

inline bool ReadArray(ByteReader* in, std::vector<int64_t>* v) {
  uint64_t n = 0;
  if (!in->ReadU64(&n) || n > in->remaining() / 8) return false;
  v->resize(static_cast<size_t>(n));
  for (int64_t& x : *v) {
    if (!in->ReadI64(&x)) return false;
  }
  return true;
}

inline bool ReadArray(ByteReader* in, std::vector<double>* v) {
  uint64_t n = 0;
  if (!in->ReadU64(&n) || n > in->remaining() / 8) return false;
  v->resize(static_cast<size_t>(n));
  for (double& x : *v) {
    if (!in->ReadF64(&x)) return false;
  }
  return true;
}

}  // namespace slimfast

#endif  // SLIMFAST_STORAGE_CODEC_H_
