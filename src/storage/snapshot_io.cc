#include "storage/snapshot_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "storage/crc32.h"

namespace slimfast {

namespace {

// "SLFSNAP1" / "1PANSFLS" in little-endian byte order.
constexpr uint64_t kSnapshotMagic = 0x3150414E53464C53ULL;
constexpr uint64_t kSnapshotFooter = 0x534C46534E415031ULL;

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status failed = Status::IOError("cannot write " + path + ": " +
                                      std::strerror(errno));
      ::close(fd);
      return failed;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status failed = Status::IOError("cannot fsync " + path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return failed;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path,
                         const std::string& payload) {
  std::string framed;
  framed.reserve(payload.size() + 20);
  AppendU64(&framed, kSnapshotMagic);
  framed += payload;
  AppendU32(&framed, Crc32(payload.data(), payload.size()));
  AppendU64(&framed, kSnapshotFooter);

  const std::string tmp = path + ".tmp";
  SLIMFAST_RETURN_NOT_OK(WriteFileDurably(tmp, framed));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  // Make the rename itself durable.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  if (!dir.empty()) {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }
  return Status::OK();
}

Result<std::string> ReadSnapshotFile(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    return Status::NotFound("no snapshot at " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("cannot read " + path);
  if (bytes.size() < 20) {
    return Status::IOError("snapshot " + path + " is truncated");
  }
  ByteReader header(bytes.data(), 8);
  uint64_t magic = 0;
  header.ReadU64(&magic);
  if (magic != kSnapshotMagic) {
    return Status::IOError("snapshot " + path + " has a bad magic");
  }
  ByteReader trailer(bytes.data() + bytes.size() - 12, 12);
  uint32_t crc = 0;
  uint64_t footer = 0;
  trailer.ReadU32(&crc);
  trailer.ReadU64(&footer);
  if (footer != kSnapshotFooter) {
    return Status::IOError("snapshot " + path +
                           " is missing its footer (torn write?)");
  }
  const size_t payload_size = bytes.size() - 20;
  if (Crc32(bytes.data() + 8, payload_size) != crc) {
    return Status::IOError("snapshot " + path + " fails its checksum");
  }
  return bytes.substr(8, payload_size);
}

void AppendStoreColumns(const ObservationStore& store, std::string* out) {
  AppendI32(out, store.num_sources());
  AppendI32(out, store.num_objects());
  AppendI32(out, store.num_values());
  AppendArray(out, store.objects());
  AppendArray(out, store.sources());
  AppendArray(out, store.values());
  AppendArray(out, store.object_offsets());
  AppendArray(out, store.truth());
  AppendU64(out, store.content_fingerprint());
}

Result<ObservationStore> ReadStoreColumns(ByteReader* in) {
  ObservationStore::Columns columns;
  if (!in->ReadI32(&columns.num_sources) ||
      !in->ReadI32(&columns.num_objects) ||
      !in->ReadI32(&columns.num_values) ||
      !ReadArray(in, &columns.objects) ||
      !ReadArray(in, &columns.sources) ||
      !ReadArray(in, &columns.values) ||
      !ReadArray(in, &columns.object_offsets) ||
      !ReadArray(in, &columns.truth) || !in->ReadU64(&columns.fingerprint)) {
    return Status::IOError("snapshot store sections are truncated");
  }
  return ObservationStore::FromColumns(std::move(columns));
}

}  // namespace slimfast
