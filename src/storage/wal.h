#ifndef SLIMFAST_STORAGE_WAL_H_
#define SLIMFAST_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/observation_store.h"
#include "util/result.h"

namespace slimfast {

/// When the WAL flushes appended records to stable storage. Separate from
/// the write itself: an un-fsynced record still survives a process kill
/// (the bytes live in the OS page cache); fsync is what makes it survive
/// power loss.
enum class WalFsync {
  /// Never fsync. Fastest; durable against process crash only.
  kNone,
  /// fsync after every appended record (the default): a batch is on
  /// stable storage before the service acknowledges it downstream.
  kEveryBatch,
  /// fsync once every `WalOptions::fsync_every_n` records: bounded loss
  /// window under power failure, amortized syscall cost.
  kEveryN,
};

/// Durability/rotation policy of an observation WAL. The defaults are
/// the safe ones: fsync every batch (a COMMIT ack implies on-disk) and
/// 4 MiB segments so checkpoint truncation reclaims space promptly.
struct WalOptions {
  /// When appended records reach stable storage (see WalFsync).
  WalFsync fsync = WalFsync::kEveryBatch;
  /// Records between fsyncs under WalFsync::kEveryN (>= 1).
  int32_t fsync_every_n = 8;
  /// Rotate to a fresh segment once the current one reaches this size.
  int64_t segment_bytes = 4 << 20;
};

/// One recovered WAL record: the batch-aligned commit unit. `sequence`
/// is 1-based and equals the number of batches applied once this record
/// is replayed — the invariant the checkpoint manifest's applied-batch
/// count keys off.
struct WalRecord {
  uint64_t sequence = 0;
  ObservationBatch batch;
};

/// One on-disk segment as seen by a scan.
struct WalSegment {
  std::string path;
  /// Sequence the segment header declares for its first record.
  uint64_t first_sequence = 0;
  /// Records that parsed intact (CRC-valid, contiguous).
  int64_t record_count = 0;
  /// Byte length of the intact prefix (header + intact records).
  int64_t valid_bytes = 0;
};

/// Result of scanning a WAL directory without mutating it.
struct WalScan {
  /// Segments ascending by first sequence.
  std::vector<WalSegment> segments;
  /// Sequence the next appended record will get (1 for an empty log).
  uint64_t next_sequence = 1;
  /// True when the final segment ends mid-record (a torn write); the
  /// torn suffix starts at the final segment's valid_bytes.
  bool tail_torn = false;
};

/// Scans `dir` and validates every record (magic, CRC, sequence
/// contiguity). A torn tail on the *final* segment is tolerated and
/// reported via `tail_torn`; the same damage on any earlier segment is
/// corruption and fails with IOError. A missing directory scans as an
/// empty log.
Result<WalScan> ScanWal(const std::string& dir);

/// Replays every intact record with sequence > `after_sequence`, in
/// sequence order. Fails with IOError if the log's first record is
/// beyond `after_sequence + 1` (records the caller needs were
/// truncated) or on any non-tail corruption. The callback's error
/// aborts the replay and is returned as-is.
Status ReplayWal(const std::string& dir, uint64_t after_sequence,
                 const std::function<Status(const WalRecord&)>& fn);

/// Append-only writer over a segment-rotated observation WAL.
///
/// Records are framed [u32 payload_len][u32 crc32(payload)][payload];
/// the payload carries the sequence number and the batch's observation
/// and truth triples, little-endian throughout. Each segment file
/// `wal-<first_sequence>.seg` starts with a 16-byte header (magic +
/// declared first sequence), so any suffix of segments can be replayed
/// without the files before it.
///
/// Single-writer: exactly one WalWriter may be open on a directory
/// (the FusionService ingest driver). Open() truncates a torn tail left
/// by a crash and resumes appending after the last intact record.
class WalWriter {
 public:
  /// Opens (creating if needed) the WAL at `dir`. `min_next_sequence`
  /// lets a caller recovering from a checkpoint start the log at the
  /// checkpoint's applied-batch count + 1 even when every earlier
  /// segment was truncated away.
  static Result<std::unique_ptr<WalWriter>> Open(
      std::string dir, WalOptions options = {},
      uint64_t min_next_sequence = 1);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one batch as the next record and applies the fsync policy;
  /// returns the record's sequence. Rotates first when the current
  /// segment is over the size threshold. After an IO failure the writer
  /// is poisoned: every further Append fails (a partially written
  /// record must not get successors behind it).
  Result<uint64_t> Append(const ObservationBatch& batch);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Closes the current segment (if it has records) and starts a fresh
  /// one at next_sequence(); makes the closed segment eligible for
  /// RemoveSegmentsBefore.
  Status Rotate();

  /// Removes closed segments whose every record has sequence <
  /// `sequence` (i.e. segments a checkpoint at `sequence - 1` applied
  /// batches has made obsolete). The active segment is never removed.
  Status RemoveSegmentsBefore(uint64_t sequence);

  /// Sequence the next Append will assign.
  uint64_t next_sequence() const { return next_sequence_; }

 private:
  WalWriter(std::string dir, WalOptions options)
      : dir_(std::move(dir)), options_(options) {}

  Status CreateSegment(uint64_t first_sequence);
  Status CloseSegment();
  Status MaybeFsync();

  std::string dir_;
  WalOptions options_;
  uint64_t next_sequence_ = 1;
  int fd_ = -1;
  bool poisoned_ = false;
  int64_t segment_bytes_written_ = 0;
  int64_t segment_records_ = 0;
  int32_t records_since_sync_ = 0;
  /// (first_sequence, path) of every live segment, ascending; the last
  /// entry is the active one.
  std::vector<std::pair<uint64_t, std::string>> segments_;
};

}  // namespace slimfast

#endif  // SLIMFAST_STORAGE_WAL_H_
