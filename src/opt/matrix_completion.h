#ifndef SLIMFAST_OPT_MATRIX_COMPLETION_H_
#define SLIMFAST_OPT_MATRIX_COMPLETION_H_

#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace slimfast {

/// Pairwise source-agreement statistics (the matrix X of Sec. 4.3).
///
/// For sources si, sj with overlapping claims, X_{ij} is the mean of
/// (+1 for agreement, -1 for disagreement) over the objects both observe.
/// Entries without overlap are "missing" — the matrix-completion estimators
/// only use observed entries.
class AgreementMatrix {
 public:
  /// Builds the agreement statistics of `dataset` (O(Σ_o m_o²) over
  /// per-object claim pairs; cheap for realistic densities).
  explicit AgreementMatrix(const Dataset& dataset);

  int32_t num_sources() const { return num_sources_; }

  /// True if sources i and j share at least one object.
  bool HasOverlap(SourceId i, SourceId j) const;

  /// Mean agreement in [-1, 1]; requires HasOverlap(i, j).
  double Agreement(SourceId i, SourceId j) const;

  /// Number of objects both sources observe.
  int64_t OverlapCount(SourceId i, SourceId j) const;

  /// Number of (i < j) source pairs with overlap.
  int64_t NumObservedPairs() const { return num_observed_pairs_; }

  /// Sum of X_{ij} over all ordered pairs i != j with overlap.
  double SumAgreements() const { return 2.0 * upper_sum_; }

  /// Total (±1) agreement score over all co-observations — the
  /// overlap-weighted numerator Σ_{(i < j)} Σ_{o∈O_i∩O_j} (±1).
  double TotalAgreementScore() const { return total_agreement_score_; }

  /// Total number of co-observations Σ_{(i < j)} |O_i ∩ O_j|.
  int64_t TotalOverlap() const { return total_overlap_; }

  /// Overlap-weighted mean agreement *rate* q̄ in [0, 1]: the fraction of
  /// co-observations that agree. NaN-free: returns 0.5 with no overlap.
  double MeanAgreementRate() const {
    if (total_overlap_ == 0) return 0.5;
    double mean_x = total_agreement_score_ /
                    static_cast<double>(total_overlap_);
    return (mean_x + 1.0) / 2.0;
  }

 private:
  size_t PairIndex(SourceId i, SourceId j) const;

  int32_t num_sources_;
  // Dense upper-triangular storage; fine for the source counts in the
  // paper's datasets (up to a few thousand sources).
  std::vector<double> agree_sum_;
  std::vector<int64_t> overlap_;
  int64_t num_observed_pairs_ = 0;
  double upper_sum_ = 0.0;
  double total_agreement_score_ = 0.0;
  int64_t total_overlap_ = 0;
};

/// Closed-form estimate of the *average* source accuracy (Sec. 4.3):
/// models E[X_{ij}] = µ² with µ = 2A - 1, solves
/// µ̂ = sqrt(mean of observed X_{ij}) and returns A = (µ̂ + 1) / 2.
/// The mean is taken over observed (overlapping) pairs and clamped at 0
/// before the square root, so adversarial instances degrade to A = 0.5.
/// Fails if no source pair overlaps.
Result<double> EstimateAverageAccuracy(const AgreementMatrix& matrix);

/// Convenience overload building the agreement matrix internally.
Result<double> EstimateAverageAccuracy(const Dataset& dataset);

/// Options for the generalized rank-1 completion (per-source accuracies).
struct Rank1CompletionOptions {
  double learning_rate = 0.05;
  int32_t max_iterations = 300;
  double tolerance = 1e-9;
  int32_t patience = 3;
  /// Initial µ_i for all sources.
  double init = 0.3;
  /// Weight each entry's squared error by the number of co-observations
  /// (X_ij estimated from k objects has variance ~1/k, so reliable entries
  /// should count more).
  bool weight_by_overlap = true;
  /// Ridge penalty toward µ_i = 0 (accuracy 0.5), in units of observation
  /// weight. Keeps sources whose pairwise evidence is a handful of ±1
  /// single-object agreements from being fit to noise — roughly, a source needs
  /// a few dozen co-observations before its pairwise evidence counts (the
  /// same long-tail caution as CATD's chi-squared shrinkage; the Genomics
  /// sparsity regime).
  double ridge = 30.0;
};

/// Generalized matrix completion mentioned in Sec. 4.3: fits per-source
/// reliabilities µ_i (X_{ij} ≈ µ_i µ_j) by minimizing squared error over
/// observed entries with gradient descent, then maps to per-source accuracy
/// estimates A_i = (clamp(µ_i, -1, 1) + 1) / 2. Fails if no pair overlaps.
Result<std::vector<double>> EstimatePerSourceAccuracy(
    const AgreementMatrix& matrix, const Rank1CompletionOptions& options);

}  // namespace slimfast

#endif  // SLIMFAST_OPT_MATRIX_COMPLETION_H_
