#ifndef SLIMFAST_OPT_SCHEDULE_H_
#define SLIMFAST_OPT_SCHEDULE_H_

#include <cmath>
#include <cstdint>

namespace slimfast {

/// Learning-rate decay families used by the SGD learners.
enum class LrDecay {
  kConstant,   ///< eta_t = eta0
  kInvSqrt,    ///< eta_t = eta0 / sqrt(1 + t)
  kInvLinear,  ///< eta_t = eta0 / (1 + t)
};

/// Step-size schedule: maps an epoch (or step) index to a learning rate.
class LearningRateSchedule {
 public:
  LearningRateSchedule(double eta0, LrDecay decay)
      : eta0_(eta0), decay_(decay) {}

  double At(int64_t t) const {
    switch (decay_) {
      case LrDecay::kConstant:
        return eta0_;
      case LrDecay::kInvSqrt:
        return eta0_ / std::sqrt(1.0 + static_cast<double>(t));
      case LrDecay::kInvLinear:
        return eta0_ / (1.0 + static_cast<double>(t));
    }
    return eta0_;
  }

  double eta0() const { return eta0_; }
  LrDecay decay() const { return decay_; }

 private:
  double eta0_;
  LrDecay decay_;
};

}  // namespace slimfast

#endif  // SLIMFAST_OPT_SCHEDULE_H_
