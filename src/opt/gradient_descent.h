#ifndef SLIMFAST_OPT_GRADIENT_DESCENT_H_
#define SLIMFAST_OPT_GRADIENT_DESCENT_H_

#include <functional>
#include <vector>

#include "opt/schedule.h"
#include "util/result.h"

namespace slimfast {

/// A differentiable objective f: R^d -> R evaluated with its dense gradient.
/// The callback writes the gradient into `grad` (pre-sized to d) and
/// returns the objective value.
using ValueAndGradientFn =
    std::function<double(const std::vector<double>& w, std::vector<double>* grad)>;

/// Options for the batch (full-gradient) descent driver.
struct GradientDescentOptions {
  double learning_rate = 0.1;
  LrDecay decay = LrDecay::kConstant;
  int32_t max_iterations = 500;
  /// L2 penalty coefficient (added as lambda * ||w||^2 / 2).
  double l2 = 0.0;
  /// L1 penalty applied via proximal soft-thresholding after each step.
  double l1 = 0.0;
  /// Convergence: relative loss change below tol for `patience` iters.
  double tolerance = 1e-8;
  int32_t patience = 3;
};

/// Result of a descent run.
struct GradientDescentResult {
  std::vector<double> weights;
  double final_loss = 0.0;
  int32_t iterations = 0;
  bool converged = false;
};

/// Minimizes `objective` (plus the configured penalties) from `init` with
/// proximal batch gradient descent.
///
/// This driver backs the small dense problems in the library — the rank-1
/// matrix-completion refinement and unit-test objectives. The fusion
/// learners use their own sparse SGD loops (see core/erm.h, core/em.h).
Result<GradientDescentResult> MinimizeBatch(
    const ValueAndGradientFn& objective, std::vector<double> init,
    const GradientDescentOptions& options);

}  // namespace slimfast

#endif  // SLIMFAST_OPT_GRADIENT_DESCENT_H_
