#include "opt/gradient_descent.h"

#include <cmath>

#include "opt/convergence.h"
#include "opt/proximal.h"

namespace slimfast {

Result<GradientDescentResult> MinimizeBatch(
    const ValueAndGradientFn& objective, std::vector<double> init,
    const GradientDescentOptions& options) {
  if (init.empty()) {
    return Status::InvalidArgument("initial point must be non-empty");
  }
  if (options.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (options.l1 < 0.0 || options.l2 < 0.0) {
    return Status::InvalidArgument("penalties must be non-negative");
  }

  LearningRateSchedule schedule(options.learning_rate, options.decay);
  ConvergenceTracker tracker(options.tolerance, options.patience);
  std::vector<double> w = std::move(init);
  std::vector<double> grad(w.size(), 0.0);

  GradientDescentResult result;
  double loss = 0.0;
  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    loss = objective(w, &grad);
    if (!std::isfinite(loss)) {
      return Status::Internal("objective produced non-finite loss");
    }
    // Add the L2 penalty (the L1 part is handled by the proximal step).
    if (options.l2 > 0.0) {
      for (size_t i = 0; i < w.size(); ++i) {
        loss += 0.5 * options.l2 * w[i] * w[i];
        grad[i] += options.l2 * w[i];
      }
    }
    double eta = schedule.At(iter);
    for (size_t i = 0; i < w.size(); ++i) {
      w[i] -= eta * grad[i];
    }
    if (options.l1 > 0.0) {
      SoftThresholdInPlace(&w, eta * options.l1);
    }
    result.iterations = iter + 1;
    if (tracker.Update(loss)) {
      result.converged = true;
      break;
    }
  }
  result.weights = std::move(w);
  result.final_loss = loss;
  return result;
}

}  // namespace slimfast
