#ifndef SLIMFAST_OPT_ADAGRAD_H_
#define SLIMFAST_OPT_ADAGRAD_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace slimfast {

/// Per-coordinate AdaGrad step-size adaptation.
///
/// The SLiMFast learners use sparse gradients (each observation touches one
/// source weight and a handful of feature weights); AdaGrad keeps step sizes
/// balanced between the frequently updated source-indicator weights of dense
/// sources and the rarely updated ones of sparse sources.
class AdaGrad {
 public:
  /// `dim` coordinates; `epsilon` guards the denominator.
  explicit AdaGrad(int64_t dim, double epsilon = 1e-8)
      : accum_(static_cast<size_t>(dim), 0.0), epsilon_(epsilon) {}

  int64_t dim() const { return static_cast<int64_t>(accum_.size()); }

  /// Records gradient `g` at coordinate `i` and returns the effective step
  /// size multiplier 1 / sqrt(accum + eps) to apply to the base rate.
  double Step(int64_t i, double g) {
    SLIMFAST_DCHECK(i >= 0 && i < dim(), "AdaGrad coordinate out of range");
    double& a = accum_[static_cast<size_t>(i)];
    a += g * g;
    return 1.0 / std::sqrt(a + epsilon_);
  }

  /// Resets accumulated curvature.
  void Reset() { accum_.assign(accum_.size(), 0.0); }

 private:
  std::vector<double> accum_;
  double epsilon_;
};

}  // namespace slimfast

#endif  // SLIMFAST_OPT_ADAGRAD_H_
