#include "opt/matrix_completion.h"

#include <algorithm>
#include <cmath>

#include "opt/convergence.h"
#include "util/logging.h"
#include "util/math.h"

namespace slimfast {

AgreementMatrix::AgreementMatrix(const Dataset& dataset)
    : num_sources_(dataset.num_sources()) {
  size_t pairs =
      static_cast<size_t>(num_sources_) * (num_sources_ - 1) / 2;
  agree_sum_.assign(pairs, 0.0);
  overlap_.assign(pairs, 0);

  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& claims = dataset.ClaimsOnObject(o);
    for (size_t a = 0; a < claims.size(); ++a) {
      for (size_t b = a + 1; b < claims.size(); ++b) {
        SourceId i = claims[a].source;
        SourceId j = claims[b].source;
        if (i == j) continue;
        size_t idx = PairIndex(std::min(i, j), std::max(i, j));
        double score = claims[a].value == claims[b].value ? 1.0 : -1.0;
        agree_sum_[idx] += score;
        total_agreement_score_ += score;
        ++overlap_[idx];
        ++total_overlap_;
      }
    }
  }
  for (size_t idx = 0; idx < overlap_.size(); ++idx) {
    if (overlap_[idx] > 0) {
      ++num_observed_pairs_;
      upper_sum_ += agree_sum_[idx] / static_cast<double>(overlap_[idx]);
    }
  }
}

size_t AgreementMatrix::PairIndex(SourceId i, SourceId j) const {
  SLIMFAST_DCHECK(i >= 0 && j > i && j < num_sources_,
                  "pair index requires 0 <= i < j < |S|");
  // Upper-triangular row-major: index of (i, j) with i < j.
  size_t si = static_cast<size_t>(i);
  size_t sj = static_cast<size_t>(j);
  size_t n = static_cast<size_t>(num_sources_);
  return si * n - si * (si + 1) / 2 + (sj - si - 1);
}

bool AgreementMatrix::HasOverlap(SourceId i, SourceId j) const {
  if (i == j) return false;
  return overlap_[PairIndex(std::min(i, j), std::max(i, j))] > 0;
}

double AgreementMatrix::Agreement(SourceId i, SourceId j) const {
  size_t idx = PairIndex(std::min(i, j), std::max(i, j));
  SLIMFAST_DCHECK(overlap_[idx] > 0, "Agreement requires overlap");
  return agree_sum_[idx] / static_cast<double>(overlap_[idx]);
}

int64_t AgreementMatrix::OverlapCount(SourceId i, SourceId j) const {
  if (i == j) return 0;
  return overlap_[PairIndex(std::min(i, j), std::max(i, j))];
}

Result<double> EstimateAverageAccuracy(const AgreementMatrix& matrix) {
  if (matrix.NumObservedPairs() == 0) {
    return Status::FailedPrecondition(
        "no overlapping source pairs; cannot estimate average accuracy");
  }
  // µ̂² = mean observed agreement; negative empirical means (worse than
  // random agreement) clamp to 0, i.e. A = 0.5.
  double mean_agreement = matrix.SumAgreements() /
                          (2.0 * static_cast<double>(matrix.NumObservedPairs()));
  double mu_sq = std::max(0.0, mean_agreement);
  double mu = std::sqrt(mu_sq);
  return (mu + 1.0) / 2.0;
}

Result<double> EstimateAverageAccuracy(const Dataset& dataset) {
  AgreementMatrix matrix(dataset);
  return EstimateAverageAccuracy(matrix);
}

Result<std::vector<double>> EstimatePerSourceAccuracy(
    const AgreementMatrix& matrix, const Rank1CompletionOptions& options) {
  if (matrix.NumObservedPairs() == 0) {
    return Status::FailedPrecondition(
        "no overlapping source pairs; cannot estimate per-source accuracy");
  }
  int32_t n = matrix.num_sources();
  std::vector<double> mu(static_cast<size_t>(n), options.init);
  std::vector<double> grad(static_cast<size_t>(n), 0.0);
  // Per-source degree (observed pairs) for gradient normalization: without
  // it the step size scales with the number of counterparties and the
  // descent diverges on dense instances.
  std::vector<double> degree(static_cast<size_t>(n), 0.0);
  for (SourceId i = 0; i < n; ++i) {
    for (SourceId j = i + 1; j < n; ++j) {
      if (!matrix.HasOverlap(i, j)) continue;
      double w = options.weight_by_overlap
                     ? static_cast<double>(matrix.OverlapCount(i, j))
                     : 1.0;
      degree[static_cast<size_t>(i)] += w;
      degree[static_cast<size_t>(j)] += w;
    }
  }
  ConvergenceTracker tracker(options.tolerance, options.patience);

  // Full-gradient descent on
  //   1/2 Σ_{observed (i,j)} w_ij (X_ij - µ_i µ_j)² + ridge/2 Σ µ_i².
  // The problem is non-convex but rank-1 with positive diagonal structure;
  // De Sa et al. [35] show SGD converges globally for such problems, and
  // a descent run from a positive init behaves the same way in practice.
  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    double loss = 0.0;
    std::fill(grad.begin(), grad.end(), 0.0);
    for (SourceId i = 0; i < n; ++i) {
      for (SourceId j = i + 1; j < n; ++j) {
        if (!matrix.HasOverlap(i, j)) continue;
        double w = options.weight_by_overlap
                       ? static_cast<double>(matrix.OverlapCount(i, j))
                       : 1.0;
        double x = matrix.Agreement(i, j);
        double err = mu[static_cast<size_t>(i)] * mu[static_cast<size_t>(j)] - x;
        loss += 0.5 * w * err * err;
        grad[static_cast<size_t>(i)] += w * err * mu[static_cast<size_t>(j)];
        grad[static_cast<size_t>(j)] += w * err * mu[static_cast<size_t>(i)];
      }
    }
    for (SourceId i = 0; i < n; ++i) {
      size_t si = static_cast<size_t>(i);
      if (degree[si] == 0.0) continue;
      grad[si] += options.ridge * mu[si];
      loss += 0.5 * options.ridge * mu[si] * mu[si];
      mu[si] -= options.learning_rate * grad[si] / (degree[si] + options.ridge);
    }
    if (tracker.Update(loss)) break;
  }

  std::vector<double> accuracies(static_cast<size_t>(n));
  for (SourceId i = 0; i < n; ++i) {
    double m = Clamp(mu[static_cast<size_t>(i)], -1.0, 1.0);
    accuracies[static_cast<size_t>(i)] = (m + 1.0) / 2.0;
  }
  return accuracies;
}

}  // namespace slimfast
