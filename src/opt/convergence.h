#ifndef SLIMFAST_OPT_CONVERGENCE_H_
#define SLIMFAST_OPT_CONVERGENCE_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace slimfast {

/// Tracks an optimization loss across iterations and decides convergence.
///
/// Converged when the relative improvement stays below `tolerance` for
/// `patience` consecutive iterations (EM and the iterative baselines all
/// use this so that "executed until convergence" means the same thing
/// everywhere in the library).
class ConvergenceTracker {
 public:
  ConvergenceTracker(double tolerance, int32_t patience)
      : tolerance_(tolerance), patience_(patience) {}

  /// Records the loss of the current iteration; returns true once converged.
  bool Update(double loss) {
    ++iterations_;
    if (std::isfinite(last_loss_)) {
      double denom = std::max(1.0, std::fabs(last_loss_));
      double rel_change = std::fabs(loss - last_loss_) / denom;
      if (rel_change < tolerance_) {
        ++stable_;
      } else {
        stable_ = 0;
      }
    }
    last_loss_ = loss;
    return converged();
  }

  bool converged() const { return stable_ >= patience_; }
  int32_t iterations() const { return iterations_; }
  double last_loss() const { return last_loss_; }

 private:
  double tolerance_;
  int32_t patience_;
  int32_t stable_ = 0;
  int32_t iterations_ = 0;
  double last_loss_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace slimfast

#endif  // SLIMFAST_OPT_CONVERGENCE_H_
