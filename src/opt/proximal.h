#ifndef SLIMFAST_OPT_PROXIMAL_H_
#define SLIMFAST_OPT_PROXIMAL_H_

#include <cmath>
#include <vector>

namespace slimfast {

/// Soft-thresholding operator, the proximal map of t*|x|:
/// returns sign(x) * max(|x| - t, 0).
///
/// This is the primitive behind the L1-regularized (Lasso) learners used
/// for the feature-importance analysis (Sec. 5.3.1, Figures 6 and 9): after
/// each gradient step, feature weights are shrunk toward zero, producing
/// exactly-sparse solutions.
inline double SoftThreshold(double x, double t) {
  if (x > t) return x - t;
  if (x < -t) return x + t;
  return 0.0;
}

/// Applies soft-thresholding elementwise to `xs` in place.
inline void SoftThresholdInPlace(std::vector<double>* xs, double t) {
  for (double& x : *xs) x = SoftThreshold(x, t);
}

/// Number of exactly-zero coordinates (sparsity diagnostic for Lasso).
inline int64_t CountZeros(const std::vector<double>& xs) {
  int64_t zeros = 0;
  for (double x : xs) {
    if (x == 0.0) ++zeros;
  }
  return zeros;
}

}  // namespace slimfast

#endif  // SLIMFAST_OPT_PROXIMAL_H_
