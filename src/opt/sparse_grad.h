#ifndef SLIMFAST_OPT_SPARSE_GRAD_H_
#define SLIMFAST_OPT_SPARSE_GRAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slimfast {

/// Sparse gradient accumulator: a dense scratch vector plus the list of
/// parameters touched since the last Clear, so per-example SGD updates and
/// per-shard batch accumulators pay O(nnz) instead of O(num_params). The
/// row-grouped batch objectives (core/erm.cc) scatter one coefficient per
/// candidate per epoch through Add after computing posteriors with the
/// batched SIMD pipelines (docs/ARCHITECTURE.md, "SIMD kernels &
/// lane-stable reductions"); the scatter itself stays scalar — it is a
/// data-dependent indexed write — and determinism comes from the
/// discipline below, not from vector width.
///
/// The accumulation discipline matches what the learners need for
/// bit-identical results under DeterministicReduce: terms are added in the
/// caller's iteration order, and draining in touched-order replays the
/// exact first-touch sequence of a serial pass. A parameter whose slot
/// cancels back to exactly 0.0 mid-accumulation is recorded again on the
/// next add, so touched() may contain duplicates — every drain loop MUST
/// call ZeroSlot as it reads each slot (as the SGD apply loop and the
/// batch-ERM shard fold do), so a duplicate contributes the zeroed slot
/// instead of double-counting the final value.
template <typename ParamIndex>
class SparseGradAccumulator {
 public:
  explicit SparseGradAccumulator(int32_t num_params)
      : slots_(static_cast<size_t>(num_params), 0.0) {}

  /// slots[param] += grad_coeff * coeff, tracking first touches.
  void Add(ParamIndex param, double coeff, double grad_coeff) {
    double& slot = slots_[static_cast<size_t>(param)];
    if (slot == 0.0) touched_.push_back(param);
    slot += grad_coeff * coeff;
  }

  /// Parameters touched since the last Clear, in first-touch order.
  const std::vector<ParamIndex>& touched() const { return touched_; }

  double Slot(ParamIndex param) const {
    return slots_[static_cast<size_t>(param)];
  }

  /// Zeroes one slot (the SGD apply loop drains slots one by one).
  void ZeroSlot(ParamIndex param) {
    slots_[static_cast<size_t>(param)] = 0.0;
  }

  /// Forgets all touches; zeroes only the touched slots (O(nnz)).
  void Clear() {
    for (ParamIndex p : touched_) slots_[static_cast<size_t>(p)] = 0.0;
    touched_.clear();
  }

 private:
  std::vector<double> slots_;
  std::vector<ParamIndex> touched_;
};

}  // namespace slimfast

#endif  // SLIMFAST_OPT_SPARSE_GRAD_H_
