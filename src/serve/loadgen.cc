#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "data/observation_store.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "serve/fusion_service.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace slimfast {

namespace {

double NearestRank(const std::vector<double>& sorted, double quantile) {
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(
      std::ceil(quantile * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

/// One single-threaded calibration round: `queries` timed queries,
/// exact p99 by sample sort. Used only by the overhead gate, where
/// histogram bucket quantization (~6%) would swamp the 5% margin.
double CalibrationP99(FusionService* service, int32_t num_objects,
                      uint64_t seed, int64_t queries) {
  Rng rng(SplitMix64(seed));
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(queries));
  for (int64_t i = 0; i < queries; ++i) {
    const ObjectId object =
        num_objects > 0 ? static_cast<ObjectId>(rng.UniformInt(num_objects))
                        : 0;
    Stopwatch watch;
    (void)service->Query(object);
    samples.push_back(watch.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return NearestRank(samples, 0.99);
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double>* samples) {
  LatencySummary summary;
  if (samples == nullptr || samples->empty()) return summary;
  std::sort(samples->begin(), samples->end());
  summary.count = static_cast<int64_t>(samples->size());
  summary.p50 = NearestRank(*samples, 0.50);
  summary.p95 = NearestRank(*samples, 0.95);
  summary.p99 = NearestRank(*samples, 0.99);
  summary.max = samples->back();
  return summary;
}

Result<LoadgenReport> RunLoadgen(const Dataset& dataset,
                                 const LoadgenOptions& options) {
  if (options.num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  if (options.reader_threads < 1) {
    return Status::InvalidArgument("reader_threads must be >= 1");
  }

  const std::vector<ObservationBatch> chunks =
      ChunkDatasetForReplay(dataset, options.num_chunks);

  FusionServiceOptions service_options;
  service_options.num_shards = options.num_shards;
  service_options.relearn_every_batches = options.relearn_every_batches;
  service_options.session.seed = options.seed;
  service_options.shard_exec = options.exec;
  SLIMFAST_ASSIGN_OR_RETURN(
      std::unique_ptr<FusionService> service,
      FusionService::Create(dataset.num_sources(), dataset.num_objects(),
                            dataset.num_values(), service_options,
                            dataset.features()));

  // --- Readers: hammer wait-free queries for the whole ingest window
  // (and past it, until each reader has a meaningful sample). ---
  const int32_t num_objects = dataset.num_objects();
  const int32_t num_values = dataset.num_values();
  std::atomic<bool> ingest_done{false};
  std::atomic<int64_t> invalid_reads{0};
  // Per-reader latency *histograms*: bounded log-scale buckets replace
  // the earlier sampling reservoirs, so every query of the run is in
  // the percentiles (exact nearest-rank over the bucket distribution at
  // any QPS, a few KB per reader) and the cross-reader merge is a
  // deterministic bucket-wise sum instead of a sample shuffle.
  std::vector<std::unique_ptr<obs::LatencyHistogram>> latencies;
  latencies.reserve(static_cast<size_t>(options.reader_threads));
  for (int32_t r = 0; r < options.reader_threads; ++r) {
    latencies.push_back(std::make_unique<obs::LatencyHistogram>());
  }
  std::vector<int64_t> query_counts(
      static_cast<size_t>(options.reader_threads), 0);
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(options.reader_threads));
  Stopwatch run_watch;
  for (int32_t r = 0; r < options.reader_threads; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(SplitMix64(options.seed ^
                         (0x7ea0e2u + static_cast<uint64_t>(r))));
      obs::LatencyHistogram& my_latencies =
          *latencies[static_cast<size_t>(r)];
      std::vector<double> probs;
      int64_t count = 0;
      while (!ingest_done.load(std::memory_order_acquire) ||
             count < options.min_queries_per_reader) {
        const ObjectId object =
            num_objects > 0
                ? static_cast<ObjectId>(rng.UniformInt(num_objects))
                : 0;
        Stopwatch query_watch;
        const ValueId value = service->Query(object);
        my_latencies.RecordSeconds(query_watch.ElapsedSeconds());
        if (value != kNoValue && (value < 0 || value >= num_values)) {
          invalid_reads.fetch_add(1, std::memory_order_relaxed);
        }
        // Exercise the consistent-snapshot read path too (untimed: the
        // latency series stays a single-operation metric).
        if ((count & 0x3f) == 0) {
          service->QueryPosterior(object, nullptr, &probs);
        }
        ++count;
      }
      query_counts[static_cast<size_t>(r)] = count;
    });
  }

  // --- Writer: replay the dataset, then drain. Readers must be joined
  // before any return path, so the writer only records its status. ---
  Stopwatch ingest_watch;
  Status writer_status = Status::OK();
  for (const ObservationBatch& chunk : chunks) {
    writer_status = service->Submit(chunk);
    if (!writer_status.ok()) break;
  }
  if (writer_status.ok()) writer_status = service->Drain();
  const double ingest_wall = ingest_watch.ElapsedSeconds();
  ingest_done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  SLIMFAST_RETURN_NOT_OK(writer_status);
  const double run_wall = run_watch.ElapsedSeconds();

  // --- Report. ---
  LoadgenReport report;
  report.num_shards = service->num_shards();
  report.num_chunks = options.num_chunks;
  report.reader_threads = options.reader_threads;
  report.ingest_wall_seconds = ingest_wall;
  report.run_wall_seconds = run_wall;
  report.invalid_reads = invalid_reads.load();
  for (const ObservationBatch& chunk : chunks) {
    report.observations += static_cast<int64_t>(chunk.observations.size());
    report.truths += static_cast<int64_t>(chunk.truths.size());
  }

  obs::LatencyHistogram merged_latencies;
  for (const auto& reader : latencies) merged_latencies.Merge(*reader);
  for (int64_t count : query_counts) report.total_queries += count;
  report.query_latency.count = merged_latencies.Count();
  report.query_latency.p50 =
      static_cast<double>(merged_latencies.PercentileNanos(0.50)) * 1e-9;
  report.query_latency.p95 =
      static_cast<double>(merged_latencies.PercentileNanos(0.95)) * 1e-9;
  report.query_latency.p99 =
      static_cast<double>(merged_latencies.PercentileNanos(0.99)) * 1e-9;
  report.query_latency.max =
      static_cast<double>(merged_latencies.MaxNanos()) * 1e-9;
  report.qps = run_wall > 0.0
                   ? static_cast<double>(report.total_queries) / run_wall
                   : 0.0;

  const std::vector<ValueId> merged = service->MergedPredictions();
  int64_t labeled = 0;
  int64_t correct = 0;
  for (ObjectId o = 0; o < num_objects; ++o) {
    const ValueId truth = dataset.Truth(o);
    if (truth == kNoValue) continue;
    if (merged[static_cast<size_t>(o)] == kNoValue) continue;
    ++labeled;
    if (merged[static_cast<size_t>(o)] == truth) ++correct;
  }
  report.accuracy = labeled > 0 ? static_cast<double>(correct) /
                                      static_cast<double>(labeled)
                                : 0.0;

  const FusionServiceStats stats = service->stats();
  report.relearns = stats.relearns;
  report.publishes = stats.publishes;

  // --- Observability overhead gate: alternate metrics off/on over
  // single-threaded calibration rounds and compare exact p99s. Min of
  // rounds on both sides rejects one-off scheduler noise; the absolute
  // 100ns floor keeps timer granularity at ~0.1us latencies from
  // failing the gate without a real regression. ---
  if (options.measure_overhead && options.overhead_queries_per_round > 0) {
    report.overhead_ran = true;
    const bool was_enabled = obs::SetEnabledForTest(false);
    double base_p99 = 0.0;
    double obs_p99 = 0.0;
    for (int round = 0; round < 3; ++round) {
      obs::SetEnabledForTest(false);
      const double base = CalibrationP99(
          service.get(), num_objects, options.seed + 101 * round,
          options.overhead_queries_per_round);
      obs::SetEnabledForTest(true);
      const double with_obs = CalibrationP99(
          service.get(), num_objects, options.seed + 101 * round + 7,
          options.overhead_queries_per_round);
      base_p99 = round == 0 ? base : std::min(base_p99, base);
      obs_p99 = round == 0 ? with_obs : std::min(obs_p99, with_obs);
    }
    obs::SetEnabledForTest(was_enabled);
    report.overhead_base_p99_seconds = base_p99;
    report.overhead_obs_p99_seconds = obs_p99;
    report.overhead_gate_passed =
        obs_p99 <= std::max(1.05 * base_p99, base_p99 + 100e-9);
  }

  if (options.verify) {
    report.verify_ran = true;
    SLIMFAST_ASSIGN_OR_RETURN(
        std::vector<FusionSnapshotPtr> offline,
        OfflineShardedReplay(dataset.num_sources(), dataset.num_objects(),
                             dataset.num_values(), service_options, chunks,
                             dataset.features()));
    const std::vector<FusionSnapshotPtr> live = service->AllSnapshots();
    report.verified = live.size() == offline.size();
    for (size_t s = 0; report.verified && s < live.size(); ++s) {
      report.verified = live[s] != nullptr && offline[s] != nullptr &&
                        *live[s] == *offline[s];
    }
  }

  service->Stop();
  return report;
}

}  // namespace slimfast
