#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "data/observation_store.h"
#include "serve/fusion_service.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace slimfast {

namespace {

double NearestRank(const std::vector<double>& sorted, double quantile) {
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(
      std::ceil(quantile * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double>* samples) {
  LatencySummary summary;
  if (samples == nullptr || samples->empty()) return summary;
  std::sort(samples->begin(), samples->end());
  summary.count = static_cast<int64_t>(samples->size());
  summary.p50 = NearestRank(*samples, 0.50);
  summary.p95 = NearestRank(*samples, 0.95);
  summary.p99 = NearestRank(*samples, 0.99);
  summary.max = samples->back();
  return summary;
}

Result<LoadgenReport> RunLoadgen(const Dataset& dataset,
                                 const LoadgenOptions& options) {
  if (options.num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  if (options.reader_threads < 1) {
    return Status::InvalidArgument("reader_threads must be >= 1");
  }

  const std::vector<ObservationBatch> chunks =
      ChunkDatasetForReplay(dataset, options.num_chunks);

  FusionServiceOptions service_options;
  service_options.num_shards = options.num_shards;
  service_options.relearn_every_batches = options.relearn_every_batches;
  service_options.session.seed = options.seed;
  service_options.shard_exec = options.exec;
  SLIMFAST_ASSIGN_OR_RETURN(
      std::unique_ptr<FusionService> service,
      FusionService::Create(dataset.num_sources(), dataset.num_objects(),
                            dataset.num_values(), service_options,
                            dataset.features()));

  // --- Readers: hammer wait-free queries for the whole ingest window
  // (and past it, until each reader has a meaningful sample). ---
  const int32_t num_objects = dataset.num_objects();
  const int32_t num_values = dataset.num_values();
  std::atomic<bool> ingest_done{false};
  std::atomic<int64_t> invalid_reads{0};
  // Per-reader latency *reservoirs*: a long run at millions of QPS would
  // otherwise accumulate hundreds of MB of samples, and the allocation
  // traffic would distort the very numbers being measured. Reservoir
  // replacement keeps an unbiased fixed-size sample of the whole run;
  // per-reader query counts stay exact.
  constexpr size_t kMaxSamplesPerReader = size_t{1} << 18;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(options.reader_threads));
  std::vector<int64_t> query_counts(
      static_cast<size_t>(options.reader_threads), 0);
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(options.reader_threads));
  Stopwatch run_watch;
  for (int32_t r = 0; r < options.reader_threads; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(SplitMix64(options.seed ^
                         (0x7ea0e2u + static_cast<uint64_t>(r))));
      std::vector<double>& my_latencies =
          latencies[static_cast<size_t>(r)];
      my_latencies.reserve(kMaxSamplesPerReader);
      std::vector<double> probs;
      int64_t count = 0;
      while (!ingest_done.load(std::memory_order_acquire) ||
             count < options.min_queries_per_reader) {
        const ObjectId object =
            num_objects > 0
                ? static_cast<ObjectId>(rng.UniformInt(num_objects))
                : 0;
        Stopwatch query_watch;
        const ValueId value = service->Query(object);
        const double seconds = query_watch.ElapsedSeconds();
        if (my_latencies.size() < kMaxSamplesPerReader) {
          my_latencies.push_back(seconds);
        } else {
          const int64_t slot = rng.UniformInt(count + 1);
          if (slot < static_cast<int64_t>(kMaxSamplesPerReader)) {
            my_latencies[static_cast<size_t>(slot)] = seconds;
          }
        }
        if (value != kNoValue && (value < 0 || value >= num_values)) {
          invalid_reads.fetch_add(1, std::memory_order_relaxed);
        }
        // Exercise the consistent-snapshot read path too (untimed: the
        // latency series stays a single-operation metric).
        if ((count & 0x3f) == 0) {
          service->QueryPosterior(object, nullptr, &probs);
        }
        ++count;
      }
      query_counts[static_cast<size_t>(r)] = count;
    });
  }

  // --- Writer: replay the dataset, then drain. Readers must be joined
  // before any return path, so the writer only records its status. ---
  Stopwatch ingest_watch;
  Status writer_status = Status::OK();
  for (const ObservationBatch& chunk : chunks) {
    writer_status = service->Submit(chunk);
    if (!writer_status.ok()) break;
  }
  if (writer_status.ok()) writer_status = service->Drain();
  const double ingest_wall = ingest_watch.ElapsedSeconds();
  ingest_done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  SLIMFAST_RETURN_NOT_OK(writer_status);
  const double run_wall = run_watch.ElapsedSeconds();

  // --- Report. ---
  LoadgenReport report;
  report.num_shards = service->num_shards();
  report.num_chunks = options.num_chunks;
  report.reader_threads = options.reader_threads;
  report.ingest_wall_seconds = ingest_wall;
  report.run_wall_seconds = run_wall;
  report.invalid_reads = invalid_reads.load();
  for (const ObservationBatch& chunk : chunks) {
    report.observations += static_cast<int64_t>(chunk.observations.size());
    report.truths += static_cast<int64_t>(chunk.truths.size());
  }

  std::vector<double> merged_latencies;
  for (const std::vector<double>& reader : latencies) {
    merged_latencies.insert(merged_latencies.end(), reader.begin(),
                            reader.end());
  }
  for (int64_t count : query_counts) report.total_queries += count;
  report.query_latency = SummarizeLatencies(&merged_latencies);
  report.qps = run_wall > 0.0
                   ? static_cast<double>(report.total_queries) / run_wall
                   : 0.0;

  const std::vector<ValueId> merged = service->MergedPredictions();
  int64_t labeled = 0;
  int64_t correct = 0;
  for (ObjectId o = 0; o < num_objects; ++o) {
    const ValueId truth = dataset.Truth(o);
    if (truth == kNoValue) continue;
    if (merged[static_cast<size_t>(o)] == kNoValue) continue;
    ++labeled;
    if (merged[static_cast<size_t>(o)] == truth) ++correct;
  }
  report.accuracy = labeled > 0 ? static_cast<double>(correct) /
                                      static_cast<double>(labeled)
                                : 0.0;

  const FusionServiceStats stats = service->stats();
  report.relearns = stats.relearns;
  report.publishes = stats.publishes;

  if (options.verify) {
    report.verify_ran = true;
    SLIMFAST_ASSIGN_OR_RETURN(
        std::vector<FusionSnapshotPtr> offline,
        OfflineShardedReplay(dataset.num_sources(), dataset.num_objects(),
                             dataset.num_values(), service_options, chunks,
                             dataset.features()));
    const std::vector<FusionSnapshotPtr> live = service->AllSnapshots();
    report.verified = live.size() == offline.size();
    for (size_t s = 0; report.verified && s < live.size(); ++s) {
      report.verified = live[s] != nullptr && offline[s] != nullptr &&
                        *live[s] == *offline[s];
    }
  }

  service->Stop();
  return report;
}

}  // namespace slimfast
