#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "data/observation_store.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "serve/fusion_service.h"
#include "serve/router.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace slimfast {

namespace {

double NearestRank(const std::vector<double>& sorted, double quantile) {
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(
      std::ceil(quantile * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

/// One single-threaded calibration round: `queries` timed queries,
/// exact p99 by sample sort. Used only by the overhead gate, where
/// histogram bucket quantization (~6%) would swamp the 5% margin.
double CalibrationP99(FusionService* service, int32_t num_objects,
                      uint64_t seed, int64_t queries) {
  Rng rng(SplitMix64(seed));
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(queries));
  for (int64_t i = 0; i < queries; ++i) {
    const ObjectId object =
        num_objects > 0 ? static_cast<ObjectId>(rng.UniformInt(num_objects))
                        : 0;
    Stopwatch watch;
    (void)service->Query(object);
    samples.push_back(watch.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return NearestRank(samples, 0.99);
}

/// Scoped stop-and-join for a pool of reader threads. The readers
/// dereference the service under test, so a reader leaked past the
/// service's Stop()/destruction is a use-after-free; binding the join to
/// a scope guarantees that *every* exit path of a run — including early
/// error returns added later, and back-to-back scenario phases in one
/// process — stops and joins the pool before the service can go away.
class ScopedReaders {
 public:
  /// `stop` is the flag the reader loops poll (acquire); it is set
  /// (release) before joining.
  explicit ScopedReaders(std::atomic<bool>* stop) : stop_(stop) {}
  ScopedReaders(const ScopedReaders&) = delete;
  ScopedReaders& operator=(const ScopedReaders&) = delete;
  ~ScopedReaders() { StopAndJoin(); }

  void Add(std::thread reader) { readers_.push_back(std::move(reader)); }

  /// Idempotent: signals the stop flag and joins every reader.
  void StopAndJoin() {
    stop_->store(true, std::memory_order_release);
    for (std::thread& reader : readers_) {
      if (reader.joinable()) reader.join();
    }
  }

 private:
  std::atomic<bool>* stop_;
  std::vector<std::thread> readers_;
};

/// Zipf(s) popularity over object ids: object `o` is the (o+1)-th most
/// popular with mass proportional to 1/(o+1)^s. Sampling is a binary
/// search over the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(int32_t num_objects, double exponent)
      : cdf_(static_cast<size_t>(num_objects)) {
    double total = 0.0;
    for (size_t i = 0; i < cdf_.size(); ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  ObjectId Sample(Rng* rng) const {
    const double u = rng->Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return static_cast<ObjectId>(cdf_.size() - 1);
    return static_cast<ObjectId>(it - cdf_.begin());
  }

  /// Probability mass of object `o`.
  double Pmf(int32_t o) const {
    const size_t i = static_cast<size_t>(o);
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
  }

 private:
  std::vector<double> cdf_;
};

/// One policy phase of the skewed scenario: replay `chunks` under
/// `policy` while Zipfian readers query and sample the hot shard's
/// staleness, then cross-check against the phase's offline oracle.
Result<PolicyPhaseReport> RunPolicyPhase(
    const Dataset& dataset, const std::vector<ObservationBatch>& chunks,
    const SkewedLoadgenOptions& options, const SchedulerOptions& policy,
    const ZipfSampler& zipf, const ShardRouter& router,
    int32_t hot_shard) {
  FusionServiceOptions service_options;
  service_options.num_shards = options.num_shards;
  service_options.relearn_every_batches = options.relearn_every_batches;
  service_options.session.seed = options.seed;
  service_options.shard_exec = options.exec;
  service_options.scheduler = policy;
  // Both phases record their relearn schedule (recording is just a
  // driver-side log append): the deterministic version-lag gate is
  // computed from it, for the scheduler phase and the flat one alike.
  service_options.scheduler.record_schedule = true;
  SLIMFAST_ASSIGN_OR_RETURN(
      std::unique_ptr<FusionService> service,
      FusionService::Create(dataset.num_sources(), dataset.num_objects(),
                            dataset.num_values(), service_options,
                            dataset.features()));

  std::atomic<bool> stop{false};
  std::atomic<int64_t> total_queries{0};
  std::vector<std::unique_ptr<obs::LatencyHistogram>> staleness;
  staleness.reserve(static_cast<size_t>(options.reader_threads));
  for (int32_t r = 0; r < options.reader_threads; ++r) {
    staleness.push_back(std::make_unique<obs::LatencyHistogram>());
  }
  std::vector<int64_t> hot_counts(
      static_cast<size_t>(options.reader_threads), 0);
  ScopedReaders readers(&stop);
  for (int32_t r = 0; r < options.reader_threads; ++r) {
    readers.Add(std::thread([&, r] {
      Rng rng(SplitMix64(options.seed ^
                         (0x21bf0b5du + static_cast<uint64_t>(r))));
      obs::LatencyHistogram& my_staleness =
          *staleness[static_cast<size_t>(r)];
      int64_t hot = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const ObjectId object = zipf.Sample(&rng);
        // The query itself is the scheduler's traffic signal.
        (void)service->Query(object);
        if (router.ShardOf(object) == hot_shard) ++hot;
        // Staleness sample: age of the hot shard's oldest unabsorbed
        // batch at this instant (0 = fully absorbed). Sampling stops
        // with ingest (the stop flag), so post-drain zeros cannot
        // dilute the percentiles.
        my_staleness.Record(service->ShardPendingAgeNanos(hot_shard));
        total_queries.fetch_add(1, std::memory_order_relaxed);
      }
      hot_counts[static_cast<size_t>(r)] = hot;
    }));
  }

  // Writer: paced replay. The pause plus the bounded wait-for-reader-
  // progress guarantee the readers observe every inter-chunk window
  // even on a single-core box.
  Stopwatch wall_watch;
  Status writer_status = Status::OK();
  for (const ObservationBatch& chunk : chunks) {
    writer_status = service->Submit(chunk);
    if (!writer_status.ok()) break;
    if (options.writer_pause_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.writer_pause_ms));
    }
    const int64_t target =
        total_queries.load(std::memory_order_relaxed) +
        options.min_queries_per_chunk;
    Stopwatch pause_watch;
    while (options.min_queries_per_chunk > 0 &&
           total_queries.load(std::memory_order_relaxed) < target &&
           pause_watch.ElapsedSeconds() < 1.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (writer_status.ok()) writer_status = service->Drain();
  PolicyPhaseReport report;
  report.wall_seconds = wall_watch.ElapsedSeconds();
  readers.StopAndJoin();
  SLIMFAST_RETURN_NOT_OK(writer_status);

  obs::LatencyHistogram merged;
  for (const auto& reader : staleness) merged.Merge(*reader);
  report.total_queries = total_queries.load();
  for (int64_t hot : hot_counts) report.hot_queries += hot;
  report.hot_staleness.count = merged.Count();
  report.hot_staleness.p50 =
      static_cast<double>(merged.PercentileNanos(0.50)) * 1e-9;
  report.hot_staleness.p95 =
      static_cast<double>(merged.PercentileNanos(0.95)) * 1e-9;
  report.hot_staleness.p99 =
      static_cast<double>(merged.PercentileNanos(0.99)) * 1e-9;
  report.hot_staleness.max =
      static_cast<double>(merged.MaxNanos()) * 1e-9;
  report.relearns = service->stats().relearns;

  // Deterministic freshness metric, derived from the recorded relearn
  // schedule instead of wall-clock sampling. The lag is measured at the
  // policy's *opportunity points* — the executed relearn cycles — not
  // at raw batch indices: after each cycle, how many cycles have now
  // passed since the hot shard was last relearned? Measuring at cycles
  // makes the number a pure function of the policy's decisions (a
  // loaded box that coalesces two paced batches into one driver group
  // moves the opportunity, which no policy could have exploited, so it
  // cannot skew the comparison). The flat policy scores 0.0 by
  // construction; a scheduler that defers the hot shard accumulates
  // lag at every cycle that skips it.
  {
    double lag_sum = 0.0;
    int64_t cycles = 0;
    double current_lag = 0.0;
    double max_lag = 0.0;
    int64_t cycle_batch = -1;
    bool hot_in_cycle = false;
    auto finish_cycle = [&] {
      if (cycle_batch < 0) return;
      current_lag = hot_in_cycle ? 0.0 : current_lag + 1.0;
      lag_sum += current_lag;
      max_lag = std::max(max_lag, current_lag);
      ++cycles;
    };
    for (const RelearnEvent& event : service->RelearnSchedule()) {
      if (event.batch_index != cycle_batch) {
        finish_cycle();
        cycle_batch = event.batch_index;
        hot_in_cycle = false;
      }
      if (event.shard == hot_shard) hot_in_cycle = true;
    }
    finish_cycle();
    report.hot_version_lag_mean =
        cycles == 0 ? 0.0 : lag_sum / static_cast<double>(cycles);
    report.hot_version_lag_max = max_lag;
  }

  if (options.verify) {
    report.verify_ran = true;
    std::vector<FusionSnapshotPtr> offline;
    if (policy.enabled && policy.record_schedule) {
      // A traffic-shaped run is verified against its *recorded*
      // schedule: the relearn sequence becomes a pure input.
      SLIMFAST_ASSIGN_OR_RETURN(
          offline, OfflineReplayWithSchedule(
                       dataset.num_sources(), dataset.num_objects(),
                       dataset.num_values(), service_options, chunks,
                       service->RelearnSchedule(), dataset.features()));
    } else {
      SLIMFAST_ASSIGN_OR_RETURN(
          offline, OfflineShardedReplay(
                       dataset.num_sources(), dataset.num_objects(),
                       dataset.num_values(), service_options, chunks,
                       dataset.features()));
    }
    const std::vector<FusionSnapshotPtr> live = service->AllSnapshots();
    report.verified = live.size() == offline.size();
    for (size_t s = 0; report.verified && s < live.size(); ++s) {
      report.verified = live[s] != nullptr && offline[s] != nullptr &&
                        *live[s] == *offline[s];
    }
  }

  service->Stop();
  return report;
}

/// Deterministic admission-control exercise: a truth-only shard keeps a
/// permanent relearn backlog of 1, so with shed_backlog_watermark=1 the
/// very next guarded submit must shed with a retry hint — the COMMIT
/// ERR BUSY path, minus the protocol layer.
Status RunShedExercise(const Dataset& dataset,
                       const SkewedLoadgenOptions& options,
                       SkewedLoadgenReport* report) {
  FusionServiceOptions service_options;
  service_options.num_shards = 2;
  service_options.relearn_every_batches = 1;
  service_options.session.seed = options.seed;
  service_options.scheduler.shed_backlog_watermark = 1;
  SLIMFAST_ASSIGN_OR_RETURN(
      std::unique_ptr<FusionService> service,
      FusionService::Create(dataset.num_sources(), dataset.num_objects(),
                            dataset.num_values(), service_options,
                            dataset.features()));

  ObservationBatch truth_only;
  truth_only.truths.push_back(TruthLabel{0, 0});
  Status status = service->Submit(truth_only);
  if (status.ok()) status = service->Drain();
  if (!status.ok()) {
    service->Stop();
    return status;
  }

  ObservationBatch next;
  next.observations.push_back(Observation{0, 0, 0});
  int64_t retry_hint_ms = 0;
  status = service->SubmitWithBackpressure(std::move(next),
                                           &retry_hint_ms);
  const int64_t sheds = service->stats().sheds;
  service->Stop();
  if (!status.IsOutOfRange()) {
    return Status::Internal(
        "admission exercise did not shed (status: " + status.ToString() +
        ")");
  }
  report->admission_sheds = sheds;
  report->shed_retry_hint_ms = retry_hint_ms;
  return Status::OK();
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double>* samples) {
  LatencySummary summary;
  if (samples == nullptr || samples->empty()) return summary;
  std::sort(samples->begin(), samples->end());
  summary.count = static_cast<int64_t>(samples->size());
  summary.p50 = NearestRank(*samples, 0.50);
  summary.p95 = NearestRank(*samples, 0.95);
  summary.p99 = NearestRank(*samples, 0.99);
  summary.max = samples->back();
  return summary;
}

Result<LoadgenReport> RunLoadgen(const Dataset& dataset,
                                 const LoadgenOptions& options) {
  if (options.num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  if (options.reader_threads < 1) {
    return Status::InvalidArgument("reader_threads must be >= 1");
  }

  const std::vector<ObservationBatch> chunks =
      ChunkDatasetForReplay(dataset, options.num_chunks);

  FusionServiceOptions service_options;
  service_options.num_shards = options.num_shards;
  service_options.relearn_every_batches = options.relearn_every_batches;
  service_options.session.seed = options.seed;
  service_options.shard_exec = options.exec;
  SLIMFAST_ASSIGN_OR_RETURN(
      std::unique_ptr<FusionService> service,
      FusionService::Create(dataset.num_sources(), dataset.num_objects(),
                            dataset.num_values(), service_options,
                            dataset.features()));

  // --- Readers: hammer wait-free queries for the whole ingest window
  // (and past it, until each reader has a meaningful sample). ---
  const int32_t num_objects = dataset.num_objects();
  const int32_t num_values = dataset.num_values();
  std::atomic<bool> ingest_done{false};
  std::atomic<int64_t> invalid_reads{0};
  // Per-reader latency *histograms*: bounded log-scale buckets replace
  // the earlier sampling reservoirs, so every query of the run is in
  // the percentiles (exact nearest-rank over the bucket distribution at
  // any QPS, a few KB per reader) and the cross-reader merge is a
  // deterministic bucket-wise sum instead of a sample shuffle.
  std::vector<std::unique_ptr<obs::LatencyHistogram>> latencies;
  latencies.reserve(static_cast<size_t>(options.reader_threads));
  for (int32_t r = 0; r < options.reader_threads; ++r) {
    latencies.push_back(std::make_unique<obs::LatencyHistogram>());
  }
  std::vector<int64_t> query_counts(
      static_cast<size_t>(options.reader_threads), 0);
  // Scope-bound teardown: whatever exit path this function takes, the
  // readers are stopped and joined before `service` is destroyed.
  ScopedReaders readers(&ingest_done);
  Stopwatch run_watch;
  for (int32_t r = 0; r < options.reader_threads; ++r) {
    readers.Add(std::thread([&, r] {
      Rng rng(SplitMix64(options.seed ^
                         (0x7ea0e2u + static_cast<uint64_t>(r))));
      obs::LatencyHistogram& my_latencies =
          *latencies[static_cast<size_t>(r)];
      std::vector<double> probs;
      int64_t count = 0;
      while (!ingest_done.load(std::memory_order_acquire) ||
             count < options.min_queries_per_reader) {
        const ObjectId object =
            num_objects > 0
                ? static_cast<ObjectId>(rng.UniformInt(num_objects))
                : 0;
        Stopwatch query_watch;
        const ValueId value = service->Query(object);
        my_latencies.RecordSeconds(query_watch.ElapsedSeconds());
        if (value != kNoValue && (value < 0 || value >= num_values)) {
          invalid_reads.fetch_add(1, std::memory_order_relaxed);
        }
        // Exercise the consistent-snapshot read path too (untimed: the
        // latency series stays a single-operation metric).
        if ((count & 0x3f) == 0) {
          service->QueryPosterior(object, nullptr, &probs);
        }
        ++count;
      }
      query_counts[static_cast<size_t>(r)] = count;
    }));
  }

  // --- Writer: replay the dataset, then drain. Readers must be joined
  // before any return path, so the writer only records its status. ---
  Stopwatch ingest_watch;
  Status writer_status = Status::OK();
  for (const ObservationBatch& chunk : chunks) {
    writer_status = service->Submit(chunk);
    if (!writer_status.ok()) break;
  }
  if (writer_status.ok()) writer_status = service->Drain();
  const double ingest_wall = ingest_watch.ElapsedSeconds();
  readers.StopAndJoin();
  SLIMFAST_RETURN_NOT_OK(writer_status);
  const double run_wall = run_watch.ElapsedSeconds();

  // --- Report. ---
  LoadgenReport report;
  report.num_shards = service->num_shards();
  report.num_chunks = options.num_chunks;
  report.reader_threads = options.reader_threads;
  report.ingest_wall_seconds = ingest_wall;
  report.run_wall_seconds = run_wall;
  report.invalid_reads = invalid_reads.load();
  for (const ObservationBatch& chunk : chunks) {
    report.observations += static_cast<int64_t>(chunk.observations.size());
    report.truths += static_cast<int64_t>(chunk.truths.size());
  }

  obs::LatencyHistogram merged_latencies;
  for (const auto& reader : latencies) merged_latencies.Merge(*reader);
  for (int64_t count : query_counts) report.total_queries += count;
  report.query_latency.count = merged_latencies.Count();
  report.query_latency.p50 =
      static_cast<double>(merged_latencies.PercentileNanos(0.50)) * 1e-9;
  report.query_latency.p95 =
      static_cast<double>(merged_latencies.PercentileNanos(0.95)) * 1e-9;
  report.query_latency.p99 =
      static_cast<double>(merged_latencies.PercentileNanos(0.99)) * 1e-9;
  report.query_latency.max =
      static_cast<double>(merged_latencies.MaxNanos()) * 1e-9;
  report.qps = run_wall > 0.0
                   ? static_cast<double>(report.total_queries) / run_wall
                   : 0.0;

  const std::vector<ValueId> merged = service->MergedPredictions();
  int64_t labeled = 0;
  int64_t correct = 0;
  for (ObjectId o = 0; o < num_objects; ++o) {
    const ValueId truth = dataset.Truth(o);
    if (truth == kNoValue) continue;
    if (merged[static_cast<size_t>(o)] == kNoValue) continue;
    ++labeled;
    if (merged[static_cast<size_t>(o)] == truth) ++correct;
  }
  report.accuracy = labeled > 0 ? static_cast<double>(correct) /
                                      static_cast<double>(labeled)
                                : 0.0;

  const FusionServiceStats stats = service->stats();
  report.relearns = stats.relearns;
  report.publishes = stats.publishes;

  // --- Observability overhead gate: alternate metrics off/on over
  // single-threaded calibration rounds and compare exact p99s. Min of
  // rounds on both sides rejects one-off scheduler noise; the absolute
  // 100ns floor keeps timer granularity at ~0.1us latencies from
  // failing the gate without a real regression. ---
  if (options.measure_overhead && options.overhead_queries_per_round > 0) {
    report.overhead_ran = true;
    const bool was_enabled = obs::SetEnabledForTest(false);
    double base_p99 = 0.0;
    double obs_p99 = 0.0;
    for (int round = 0; round < 3; ++round) {
      obs::SetEnabledForTest(false);
      const double base = CalibrationP99(
          service.get(), num_objects, options.seed + 101 * round,
          options.overhead_queries_per_round);
      obs::SetEnabledForTest(true);
      const double with_obs = CalibrationP99(
          service.get(), num_objects, options.seed + 101 * round + 7,
          options.overhead_queries_per_round);
      base_p99 = round == 0 ? base : std::min(base_p99, base);
      obs_p99 = round == 0 ? with_obs : std::min(obs_p99, with_obs);
    }
    obs::SetEnabledForTest(was_enabled);
    report.overhead_base_p99_seconds = base_p99;
    report.overhead_obs_p99_seconds = obs_p99;
    report.overhead_gate_passed =
        obs_p99 <= std::max(1.05 * base_p99, base_p99 + 100e-9);
  }

  if (options.verify) {
    report.verify_ran = true;
    SLIMFAST_ASSIGN_OR_RETURN(
        std::vector<FusionSnapshotPtr> offline,
        OfflineShardedReplay(dataset.num_sources(), dataset.num_objects(),
                             dataset.num_values(), service_options, chunks,
                             dataset.features()));
    const std::vector<FusionSnapshotPtr> live = service->AllSnapshots();
    report.verified = live.size() == offline.size();
    for (size_t s = 0; report.verified && s < live.size(); ++s) {
      report.verified = live[s] != nullptr && offline[s] != nullptr &&
                        *live[s] == *offline[s];
    }
  }

  service->Stop();
  return report;
}

Result<SkewedLoadgenReport> RunSkewedLoadgen(
    const Dataset& dataset, const SkewedLoadgenOptions& options) {
  if (options.num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  if (options.reader_threads < 1) {
    return Status::InvalidArgument("reader_threads must be >= 1");
  }
  if (options.num_shards < 2) {
    return Status::InvalidArgument(
        "the skewed scenario needs >= 2 shards (one hot, some cold)");
  }
  if (dataset.num_objects() < options.num_shards) {
    return Status::InvalidArgument(
        "the skewed scenario needs at least one object per shard");
  }
  if (options.zipf_exponent <= 0.0) {
    return Status::InvalidArgument("zipf_exponent must be positive");
  }

  const std::vector<ObservationBatch> chunks =
      ChunkDatasetForReplay(dataset, options.num_chunks);
  const ZipfSampler zipf(dataset.num_objects(), options.zipf_exponent);
  const ShardRouter router(options.num_shards);

  SkewedLoadgenReport report;
  // The hot shard is the one the Zipf mass lands on: sum each object's
  // popularity into its shard and take the argmax (ties to the lower
  // id, matching the scheduler's own tie break).
  std::vector<double> shard_mass(static_cast<size_t>(options.num_shards),
                                 0.0);
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    shard_mass[static_cast<size_t>(router.ShardOf(o))] += zipf.Pmf(o);
  }
  for (int32_t s = 0; s < options.num_shards; ++s) {
    if (shard_mass[static_cast<size_t>(s)] >
        shard_mass[static_cast<size_t>(report.hot_shard)]) {
      report.hot_shard = s;
    }
  }
  report.hot_shard_mass =
      shard_mass[static_cast<size_t>(report.hot_shard)];

  // Phase 1: the flat policy (admission knobs intentionally off — the
  // phases must ingest the identical chunk schedule).
  SchedulerOptions flat;
  SLIMFAST_ASSIGN_OR_RETURN(
      report.flat, RunPolicyPhase(dataset, chunks, options, flat, zipf,
                                  router, report.hot_shard));

  // Phase 2: the traffic-aware scheduler, same chunks, same pacing,
  // same thread budget.
  SchedulerOptions sched = options.scheduler;
  sched.enabled = true;
  sched.shed_queue_watermark = 0.0;
  sched.shed_backlog_watermark = 0;
  if (options.verify) sched.record_schedule = true;
  SLIMFAST_ASSIGN_OR_RETURN(
      report.sched, RunPolicyPhase(dataset, chunks, options, sched, zipf,
                                   router, report.hot_shard));

  // The gate asserts invariants of the policies, not of the timing, so
  // it holds on every execution of a correct build and fails
  // deterministically on a regression: (1) the flat policy relearns
  // every pending shard at every cycle, so its hot version lag is 0 by
  // construction; (2) the scheduler's deferral bound guarantees the hot
  // shard's lag never exceeds max_deferred_cycles (the forced-relearn
  // path); (3) the scheduler spends strictly fewer relearns — its whole
  // proposition. Wall-clock hot_staleness percentiles stay in the
  // report as informational color (they are load-dependent and used to
  // flake this gate on a busy 1-core box).
  report.gate_passed =
      report.flat.relearns > 0 && report.sched.relearns > 0 &&
      report.flat.hot_version_lag_mean == 0.0 &&
      report.sched.hot_version_lag_max <=
          static_cast<double>(options.scheduler.max_deferred_cycles) &&
      report.sched.relearns < report.flat.relearns;

  SLIMFAST_RETURN_NOT_OK(RunShedExercise(dataset, options, &report));
  return report;
}

}  // namespace slimfast
