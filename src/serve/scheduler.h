#ifndef SLIMFAST_SERVE_SCHEDULER_H_
#define SLIMFAST_SERVE_SCHEDULER_H_

#include <cstdint>
#include <vector>

namespace slimfast {

/// Policy knobs of the traffic-aware relearn scheduler (and of ingest
/// admission control, which works with either relearn policy).
///
/// With `enabled == false` the service keeps the flat policy: every
/// relearn trigger drains *every* shard with pending data. With
/// `enabled == true` each every-K boundary becomes a *decision cycle*:
/// shards are ranked by priority = (1 + traffic) x staleness x pending
/// and only the top few relearn, split across two queue levels — a warm
/// queue for shards that already have a model (cheap warm-started
/// relearns) and a cold queue for first-fit shards (expensive from-
/// scratch fits) — so one cold shard's initial fit never blocks a hot
/// shard's warm refresh. Drain/Stop/staleness flushes still relearn
/// everything pending, scheduler or not.
struct SchedulerOptions {
  /// Master switch. Off = flat policy (every trigger drains all shards).
  bool enabled = false;
  /// Most *warm* shards (has_model) relearned per decision cycle.
  /// 0 = unlimited (priority ordering still applies to the log).
  int32_t warm_budget_per_cycle = 2;
  /// Most *cold* (first-fit) shards relearned per decision cycle.
  /// 0 = unlimited.
  int32_t cold_budget_per_cycle = 1;
  /// A shard with pending data that lost `max_deferred_cycles`
  /// consecutive decisions is forced into the next cycle regardless of
  /// budget — the staleness bound of the policy, in cycles.
  int32_t max_deferred_cycles = 4;
  /// Record every executed relearn as a (batch_index, shard) event so
  /// the run can be re-verified against OfflineReplayWithSchedule.
  /// Off by default: long-lived servers should not grow an unbounded
  /// log.
  bool record_schedule = false;

  // --- Admission control (independent of `enabled`) --------------------

  /// Shed ingest once the queue holds >= this fraction of its capacity
  /// (0 disables the queue watermark). Shedding replies ERR BUSY with a
  /// retry hint instead of blocking the producer.
  double shed_queue_watermark = 0.0;
  /// Shed ingest once the relearn backlog (sum of per-shard pending
  /// batches) reaches this many batches (0 disables).
  int64_t shed_backlog_watermark = 0;

  bool admission_enabled() const {
    return shed_queue_watermark > 0.0 || shed_backlog_watermark > 0;
  }
};

/// Scheduler inputs for one shard at one decision cycle. Every field is
/// a pure function of the ingest stream except `traffic`, which the
/// live service samples from its per-shard query counters (the offline
/// oracle passes 0 — see the determinism note on RelearnScheduler).
struct ShardSchedInput {
  /// Batches ingested since the shard's last relearn.
  int32_t pending = 0;
  /// The shard has observations to fit against (truth-only shards
  /// cannot relearn yet; selecting one only republishes its evidence).
  bool can_fit = false;
  /// The shard has a fitted model — warm queue; otherwise cold queue.
  bool has_model = false;
  /// Queries routed to the shard since the previous decision cycle.
  int64_t traffic = 0;
};

/// Per-shard scheduler state exported for the SCHED verb and the
/// priority gauges. `priority`/`traffic` are the values of the most
/// recent decision cycle.
struct ShardSchedState {
  double priority = 0.0;
  int32_t pending = 0;
  int64_t traffic = 0;
  /// Consecutive decision cycles this shard had pending data but was
  /// not selected.
  int32_t deferred_cycles = 0;
  /// Times the scheduler (or a flush) covered this shard.
  int64_t selections = 0;
};

/// One relearn the driver actually executed: shard `shard` relearned
/// right after the `batch_index`-th applied batch. The sequence of
/// these events *is* the relearn schedule of a run, and replaying it
/// through offline per-shard sessions (OfflineReplayWithSchedule)
/// reproduces the run's snapshots bit for bit.
struct RelearnEvent {
  int64_t batch_index = 0;
  int32_t shard = 0;
};

/// The relearn decision engine. Deterministic by construction: a
/// decision is a pure function of (batch index, per-shard inputs,
/// options, the scheduler's own bookkeeping), with ties broken by shard
/// id. Both the live driver and the offline oracle run this same class,
/// so for a fixed batch schedule and policy config the relearn sequence
/// is identical — the live side feeds real query-traffic samples into
/// `ShardSchedInput::traffic`, the offline side feeds 0, which is why a
/// run *with* traffic is verified against its *recorded* schedule
/// (OfflineReplayWithSchedule) while a traffic-free run matches the
/// zero-traffic simulation directly.
class RelearnScheduler {
 public:
  RelearnScheduler(SchedulerOptions options, int32_t num_shards);

  /// Ranks shards with pending data by
  ///   priority = (1 + traffic) * staleness_cycles * pending
  /// (staleness_cycles = batches since the shard's last relearn,
  /// measured at `batch_index`) and returns the shard ids to relearn
  /// now, ordered warm queue first, each queue by descending priority,
  /// shard id as the tie break. Budget-losers accrue deferral; shards
  /// deferred past max_deferred_cycles are appended regardless of
  /// budget. Updates the exported per-shard state.
  std::vector<int32_t> DecideCycle(
      int64_t batch_index, const std::vector<ShardSchedInput>& inputs);

  /// A flush (drain, stop, staleness sweep, recovery) relearned every
  /// pending shard outside the budget: reset all bookkeeping to "just
  /// relearned at `batch_index`".
  void NoteFlush(int64_t batch_index);

  /// Per-shard state as of the most recent decision (SCHED verb,
  /// priority gauges).
  const std::vector<ShardSchedState>& shard_state() const { return state_; }

  /// Decision cycles run so far.
  int64_t cycles() const { return cycles_; }

  const SchedulerOptions& options() const { return options_; }

 private:
  SchedulerOptions options_;
  /// Batch index of each shard's most recent relearn (0 = never).
  std::vector<int64_t> last_relearn_batch_;
  std::vector<ShardSchedState> state_;
  int64_t cycles_ = 0;
};

}  // namespace slimfast

#endif  // SLIMFAST_SERVE_SCHEDULER_H_
