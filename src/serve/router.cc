#include "serve/router.h"

namespace slimfast {

ShardRouter::ShardRouter(int32_t num_shards, uint64_t salt)
    : num_shards_(num_shards < 1 ? 1 : num_shards), salt_(salt) {}

std::vector<ObservationBatch> ShardRouter::Split(
    const ObservationBatch& batch) const {
  std::vector<ObservationBatch> shards(static_cast<size_t>(num_shards_));
  for (const Observation& obs : batch.observations) {
    shards[static_cast<size_t>(ShardOf(obs.object))].observations.push_back(
        obs);
  }
  for (const TruthLabel& label : batch.truths) {
    shards[static_cast<size_t>(ShardOf(label.object))].truths.push_back(
        label);
  }
  return shards;
}

}  // namespace slimfast
