#include "serve/fusion_service.h"

#include <chrono>
#include <filesystem>
#include <future>
#include <utility>

#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/durability.h"

namespace slimfast {

namespace {

/// The per-shard session configuration both the live service and the
/// offline oracle build from — one definition, so the replayed shard is
/// configured exactly like the served one.
FusionSessionOptions ShardSessionOptions(const FusionServiceOptions& options,
                                         int32_t shard) {
  FusionSessionOptions session = options.session;
  session.name += "-shard" + std::to_string(shard);
  return session;
}

/// The count-based relearn trigger: pure in the number of applied
/// batches, so live and offline replays fire at identical points.
bool RelearnDue(int64_t applied_batches, int32_t every_batches) {
  return every_batches > 0 && applied_batches % every_batches == 0;
}

/// steady_clock nanos since its (arbitrary) epoch; the unit the
/// snapshot-age gauge works in.
int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Registers the per-shard stage timer for (`stage`, `shard`).
obs::LatencyHistogram* StageHistogram(const char* stage, int32_t shard) {
  return obs::GetHistogram(
      std::string("slimfast_serve_stage_seconds{stage=\"") + stage +
      "\",shard=\"" + std::to_string(shard) + "\"}");
}

}  // namespace

FusionService::FusionService(FusionServiceOptions options,
                             int32_t num_sources, int32_t num_objects,
                             int32_t num_values)
    : options_(std::move(options)),
      num_sources_(num_sources),
      num_objects_(num_objects),
      num_values_(num_values),
      router_(options_.num_shards),
      shard_exec_(options_.shard_exec),
      queue_(options_.queue_capacity) {}

Result<std::unique_ptr<FusionService>> FusionService::Create(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    FusionServiceOptions options, FeatureSpace features) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.max_coalesced_batches == 0) options.max_coalesced_batches = 1;

  std::unique_ptr<FusionService> service(new FusionService(
      std::move(options), num_sources, num_objects, num_values));
  const int32_t num_shards = service->router_.num_shards();
  service->shards_.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    SLIMFAST_ASSIGN_OR_RETURN(
        FusionSession session,
        FusionSession::Create(num_sources, num_objects, num_values,
                              ShardSessionOptions(service->options_, s),
                              features));
    Shard shard;
    shard.session = std::make_unique<FusionSession>(std::move(session));
    // Registered unconditionally (registration is one mutexed map
    // lookup per shard per service); recording stays behind
    // obs::Enabled() so a disabled process never touches them.
    shard.ingest_hist = StageHistogram("ingest", s);
    shard.relearn_hist = StageHistogram("relearn", s);
    shard.publish_hist = StageHistogram("publish", s);
    service->shards_.push_back(std::move(shard));
    service->slots_.push_back(std::make_unique<SnapshotSlot>());
  }
  if (service->options_.durability.enabled()) {
    SLIMFAST_RETURN_NOT_OK(service->RecoverFromDir(features));
  }
  service->PublishInitialSnapshots();
  {
    std::lock_guard<std::mutex> lock(service->state_mu_);
    service->UpdateSessionStatsLocked();
  }
  service->driver_ = std::thread([raw = service.get()] { raw->DriverLoop(); });
  return service;
}

Result<std::unique_ptr<FusionService>> FusionService::Recover(
    std::string wal_dir, int32_t num_sources, int32_t num_objects,
    int32_t num_values, FusionServiceOptions options,
    FeatureSpace features) {
  if (wal_dir.empty()) {
    return Status::InvalidArgument("Recover needs a non-empty wal_dir");
  }
  options.durability.wal_dir = std::move(wal_dir);
  return Create(num_sources, num_objects, num_values, std::move(options),
                std::move(features));
}

Status FusionService::RecoverFromDir(const FeatureSpace& features) {
  obs::TraceSpan span("serve.recover");
  const std::string& dir = options_.durability.wal_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir " + dir + ": " +
                           ec.message());
  }

  Result<CheckpointManifest> manifest = ReadManifest(dir);
  if (manifest.ok()) {
    if (manifest->num_shards != router_.num_shards() ||
        manifest->num_sources != num_sources_ ||
        manifest->num_objects != num_objects_ ||
        manifest->num_values != num_values_) {
      return Status::FailedPrecondition(
          "checkpoint in " + dir +
          " was written by a service with a different topology");
    }
    applied_batches_ = static_cast<int64_t>(manifest->applied_batches);
    recovered_ = true;
    for (int32_t s = 0; s < router_.num_shards(); ++s) {
      SLIMFAST_ASSIGN_OR_RETURN(
          ShardCheckpoint checkpoint,
          ReadShardSnapshot(
              ShardSnapshotPath(dir, s, manifest->applied_batches)));
      const int32_t pending = checkpoint.state.pending_batches;
      SLIMFAST_ASSIGN_OR_RETURN(
          FusionSession session,
          FusionSession::Restore(checkpoint.store,
                                 std::move(checkpoint.state),
                                 ShardSessionOptions(options_, s),
                                 features));
      Shard& shard = shards_[static_cast<size_t>(s)];
      shard.session = std::make_unique<FusionSession>(std::move(session));
      shard.pending = pending;
      shard.last_published_fingerprint = 0;
      if (pending > 0) shard.oldest_pending.Restart();
    }
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  }

  // Replay the acknowledged tail with the live driver's schedule: apply
  // in sequence order, relearn on the same every-K boundaries, then run
  // the drain-equivalent final relearn — so the recovered snapshots are
  // exactly what OfflineShardedReplay computes for the acknowledged
  // prefix.
  SLIMFAST_RETURN_NOT_OK(ReplayWal(
      dir, static_cast<uint64_t>(applied_batches_),
      [&](const WalRecord& record) -> Status {
        recovered_ = true;
        ApplyBatch(record.batch);
        ++applied_batches_;
        if (RelearnDue(applied_batches_, options_.relearn_every_batches)) {
          RelearnPending("recover");
        }
        return Status::OK();
      }));
  RelearnPending("recover");

  SLIMFAST_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(dir, options_.durability.wal,
                            static_cast<uint64_t>(applied_batches_) + 1));
  return Status::OK();
}

FusionService::~FusionService() { Stop(); }

void FusionService::PublishInitialSnapshots() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    slots_[s]->Store(shards_[s].session->ExportSnapshot());
    shards_[s].last_published_fingerprint =
        shards_[s].session->instance()->store.content_fingerprint();
  }
  last_publish_ns_.store(NowNanos(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  stats_.publishes += static_cast<int64_t>(shards_.size());
}

Status FusionService::Submit(ObservationBatch batch) {
  Command command;
  command.batch = std::move(batch);
  if (!queue_.Push(std::move(command))) {
    return Status::FailedPrecondition("FusionService is stopped");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.batches_submitted;
  return Status::OK();
}

Status FusionService::TrySubmit(ObservationBatch batch) {
  Command command;
  command.batch = std::move(batch);
  if (!queue_.TryPush(std::move(command))) {
    if (queue_.closed()) {
      return Status::FailedPrecondition("FusionService is stopped");
    }
    if (obs::Enabled()) {
      static obs::ShardedCounter* shed =
          obs::GetCounter("slimfast_serve_shed_total");
      shed->Increment();
    }
    return Status::OutOfRange("ingest queue is full");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.batches_submitted;
  return Status::OK();
}

Status FusionService::Drain() {
  Command command;
  command.flush = true;
  auto ack = std::make_shared<std::promise<void>>();
  std::future<void> done = ack->get_future();
  command.ack = std::move(ack);
  if (!queue_.Push(std::move(command))) {
    // Stopped — but the driver may still be applying the tail of the
    // queue. Wait for shutdown to complete so Drain's contract (all
    // prior submissions applied + published on return) still holds.
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (driver_.joinable()) driver_.join();
    return Status::OK();
  }
  done.wait();
  return Status::OK();
}

Status FusionService::Checkpoint() {
  if (!options_.durability.enabled()) {
    return Status::FailedPrecondition(
        "durability is disabled: create the service with a wal_dir to "
        "checkpoint");
  }
  Command command;
  command.checkpoint = true;
  auto ack = std::make_shared<std::promise<Status>>();
  std::future<Status> done = ack->get_future();
  command.checkpoint_ack = std::move(ack);
  if (!queue_.Push(std::move(command))) {
    return Status::FailedPrecondition("FusionService is stopped");
  }
  return done.get();
}

Status FusionService::WriteCheckpoint() {
  obs::TraceSpan span("serve.checkpoint");
  const std::string& dir = options_.durability.wal_dir;
  const uint64_t applied = static_cast<uint64_t>(applied_batches_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    SLIMFAST_RETURN_NOT_OK(WriteShardSnapshot(
        ShardSnapshotPath(dir, static_cast<int32_t>(s), applied),
        shards_[s].session->instance()->store,
        shards_[s].session->ExportState()));
  }
  CheckpointManifest manifest;
  manifest.applied_batches = applied;
  manifest.num_shards = router_.num_shards();
  manifest.num_sources = num_sources_;
  manifest.num_objects = num_objects_;
  manifest.num_values = num_values_;
  SLIMFAST_RETURN_NOT_OK(WriteManifest(dir, manifest));
  // The manifest rename above is the commit point; everything below is
  // cleanup of state the new checkpoint superseded.
  SLIMFAST_RETURN_NOT_OK(RemoveStaleShardSnapshots(dir, applied));
  if (wal_ != nullptr) {
    SLIMFAST_RETURN_NOT_OK(wal_->Rotate());
    SLIMFAST_RETURN_NOT_OK(wal_->RemoveSegmentsBefore(applied + 1));
  }
  return Status::OK();
}

void FusionService::Stop() {
  queue_.Close();  // idempotent; fails further submissions immediately
  // Join under stop_mu_: a concurrent Stop that loses the race blocks
  // here until the winner's join completes, so *every* Stop returns
  // only after the driver has drained, flushed, and exited.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (driver_.joinable()) driver_.join();
}

void FusionService::DriverLoop() {
  const bool timed = options_.staleness_budget_seconds > 0.0;
  const auto poll = std::chrono::milliseconds(10);
  for (;;) {
    std::vector<Command> group =
        timed ? queue_.PopBatchFor(options_.max_coalesced_batches, poll)
              : queue_.PopBatch(options_.max_coalesced_batches);
    if (group.empty()) {
      // An empty timed pop can race with a concurrent Submit + Stop
      // (timeout on an open queue, then close): only break once the
      // queue is both closed and drained — nothing can be pushed after
      // a close, so a non-zero size here means commands still to apply,
      // which the next pop returns immediately. The untimed PopBatch
      // returns empty only when closed-and-drained, so this condition
      // is then always true.
      if (queue_.closed() && queue_.size() == 0) break;
      // Timed wakeup with nothing queued: only the staleness budget can
      // have work for us.
      if (StalenessExceeded()) RelearnPending("staleness");
      continue;
    }
    for (Command& command : group) {
      if (command.flush) {
        RelearnPending("drain");
        // Refresh the exported per-shard counters before acking: a
        // Drain caller reading SessionStats() right after must see the
        // post-flush state (pending 0, fresh relearn durations), not
        // the previous driver step's copy.
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          UpdateSessionStatsLocked();
        }
        if (command.ack != nullptr) command.ack->set_value();
        continue;
      }
      if (command.checkpoint) {
        Status written = WriteCheckpoint();
        if (!written.ok()) {
          std::lock_guard<std::mutex> lock(state_mu_);
          stats_.last_error = "checkpoint: " + written.ToString();
        }
        if (command.checkpoint_ack != nullptr) {
          command.checkpoint_ack->set_value(std::move(written));
        }
        continue;
      }
      // Log before applying: a batch is only acknowledged (applied,
      // counted, relearned against) once it is in the WAL, so the WAL
      // sequence of the last record always equals applied_batches_ —
      // the invariant checkpoint and recovery key off.
      if (wal_ != nullptr) {
        Result<uint64_t> logged = wal_->Append(command.batch);
        if (!logged.ok()) {
          std::lock_guard<std::mutex> lock(state_mu_);
          ++stats_.ingest_failures;
          stats_.last_error = "wal append: " + logged.status().ToString();
          continue;
        }
      }
      ApplyBatch(command.batch);
      ++applied_batches_;
      if (RelearnDue(applied_batches_, options_.relearn_every_batches)) {
        RelearnPending("policy");
      }
    }
    if (timed && StalenessExceeded()) RelearnPending("staleness");
    std::lock_guard<std::mutex> lock(state_mu_);
    UpdateSessionStatsLocked();
  }
  // Shutdown: everything queued has been applied; give the tail of the
  // stream its relearn and final publication.
  RelearnPending("stop");
  std::lock_guard<std::mutex> lock(state_mu_);
  UpdateSessionStatsLocked();
}

void FusionService::ApplyBatch(const ObservationBatch& batch) {
  obs::TraceSpan span("serve.apply_batch");
  const std::vector<ObservationBatch> subs = router_.Split(batch);
  const int32_t num_shards = router_.num_shards();
  std::vector<Status> statuses(static_cast<size_t>(num_shards),
                               Status::OK());
  RunSharded(&shard_exec_, num_shards, [&](int32_t s) {
    const ObservationBatch& sub = subs[static_cast<size_t>(s)];
    if (sub.empty()) return;
    Shard& shard = shards_[static_cast<size_t>(s)];
    obs::TraceSpan shard_span("serve.shard_ingest");
    obs::ScopedTimer timer(shard.ingest_hist);
    Result<IngestStats> ingested = shard.session->Ingest(sub);
    if (!ingested.ok()) {
      statuses[static_cast<size_t>(s)] = ingested.status();
      return;
    }
    if (shard.pending == 0) shard.oldest_pending.Restart();
    ++shard.pending;
  });

  int64_t observations = 0;
  int64_t truths = 0;
  int64_t failures = 0;
  Status first_failure = Status::OK();
  for (int32_t s = 0; s < num_shards; ++s) {
    const ObservationBatch& sub = subs[static_cast<size_t>(s)];
    if (sub.empty()) continue;
    const Status& status = statuses[static_cast<size_t>(s)];
    if (status.ok()) {
      observations += static_cast<int64_t>(sub.observations.size());
      truths += static_cast<int64_t>(sub.truths.size());
    } else {
      ++failures;
      if (first_failure.ok()) first_failure = status;
    }
  }
  if (obs::Enabled()) {
    static obs::ShardedCounter* applied =
        obs::GetCounter("slimfast_serve_batches_applied_total");
    applied->Increment();
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.batches_processed;
  stats_.observations_ingested += observations;
  stats_.truths_ingested += truths;
  if (failures > 0) {
    stats_.ingest_failures += failures;
    stats_.last_error = first_failure.ToString();
  }
}

void FusionService::RelearnPending(const char* reason) {
  obs::TraceSpan span("serve.relearn");
  const int32_t num_shards = router_.num_shards();
  std::vector<Status> statuses(static_cast<size_t>(num_shards),
                               Status::OK());
  std::vector<uint8_t> relearned(static_cast<size_t>(num_shards), 0);
  std::vector<uint8_t> published(static_cast<size_t>(num_shards), 0);
  RunSharded(&shard_exec_, num_shards, [&](int32_t s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    if (shard.pending == 0) return;
    obs::TraceSpan shard_span("serve.shard_relearn");
    const bool can_fit = shard.session->num_observations() > 0;
    if (can_fit) {
      obs::ScopedTimer timer(shard.relearn_hist);
      Result<RelearnStats> stats = shard.session->Relearn();
      if (!stats.ok()) {
        statuses[static_cast<size_t>(s)] = stats.status();
        return;
      }
      relearned[static_cast<size_t>(s)] = 1;
      shard.pending = 0;
    }
    // A shard whose pending batches carried only truth labels has
    // nothing to fit yet: its pending count stays up (the labels are
    // genuinely unabsorbed, matching the session's own counter), but
    // the refreshed evidence publishes once per store change.
    const uint64_t fingerprint =
        shard.session->instance()->store.content_fingerprint();
    if (can_fit || fingerprint != shard.last_published_fingerprint) {
      obs::ScopedTimer timer(shard.publish_hist);
      slots_[static_cast<size_t>(s)]->Store(
          shard.session->ExportSnapshot());
      shard.last_published_fingerprint = fingerprint;
      published[static_cast<size_t>(s)] = 1;
    }
  });

  int64_t relearns = 0;
  int64_t publishes = 0;
  Status first_failure = Status::OK();
  for (int32_t s = 0; s < num_shards; ++s) {
    relearns += relearned[static_cast<size_t>(s)];
    publishes += published[static_cast<size_t>(s)];
    if (!statuses[static_cast<size_t>(s)].ok() && first_failure.ok()) {
      first_failure = statuses[static_cast<size_t>(s)];
    }
  }
  if (publishes > 0) {
    last_publish_ns_.store(NowNanos(), std::memory_order_relaxed);
  }
  if (obs::Enabled()) {
    static obs::ShardedCounter* relearns_total =
        obs::GetCounter("slimfast_serve_relearns_total");
    static obs::ShardedCounter* publishes_total =
        obs::GetCounter("slimfast_serve_publishes_total");
    relearns_total->Add(relearns);
    publishes_total->Add(publishes);
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  stats_.relearns += relearns;
  stats_.publishes += publishes;
  if (!first_failure.ok()) {
    stats_.last_error =
        std::string(reason) + " relearn: " + first_failure.ToString();
  }
}

bool FusionService::StalenessExceeded() const {
  for (const Shard& shard : shards_) {
    // Only fittable shards count: a truth-only shard stays pending
    // until observations arrive, and repeatedly "relearning" it would
    // be a no-op storm.
    if (shard.pending > 0 && shard.session->num_observations() > 0 &&
        shard.oldest_pending.ElapsedSeconds() >
            options_.staleness_budget_seconds) {
      return true;
    }
  }
  return false;
}

ValueId FusionService::Query(ObjectId object) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return kNoValue;
  FusionSnapshotPtr snapshot =
      slots_[static_cast<size_t>(router_.ShardOf(object))]->Load();
  return snapshot == nullptr ? kNoValue : snapshot->Prediction(object);
}

double FusionService::QueryConfidence(ObjectId object) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return 0.0;
  FusionSnapshotPtr snapshot =
      slots_[static_cast<size_t>(router_.ShardOf(object))]->Load();
  return snapshot == nullptr ? 0.0 : snapshot->Confidence(object);
}

bool FusionService::QueryPosterior(ObjectId object,
                                   std::vector<ValueId>* values,
                                   std::vector<double>* probs) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return false;
  FusionSnapshotPtr snapshot =
      slots_[static_cast<size_t>(router_.ShardOf(object))]->Load();
  return snapshot != nullptr &&
         snapshot->PosteriorOf(object, values, probs);
}

FusionSnapshotPtr FusionService::SnapshotFor(ObjectId object) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return nullptr;
  return slots_[static_cast<size_t>(router_.ShardOf(object))]->Load();
}

FusionSnapshotPtr FusionService::ShardSnapshot(int32_t shard) const {
  if (shard < 0 || shard >= router_.num_shards()) return nullptr;
  return slots_[static_cast<size_t>(shard)]->Load();
}

std::vector<FusionSnapshotPtr> FusionService::AllSnapshots() const {
  std::vector<FusionSnapshotPtr> snapshots;
  snapshots.reserve(slots_.size());
  for (const auto& slot : slots_) snapshots.push_back(slot->Load());
  return snapshots;
}

std::vector<ValueId> FusionService::MergedPredictions() const {
  const std::vector<FusionSnapshotPtr> snapshots = AllSnapshots();
  std::vector<ValueId> merged(static_cast<size_t>(num_objects_), kNoValue);
  for (ObjectId o = 0; o < num_objects_; ++o) {
    const FusionSnapshotPtr& snapshot =
        snapshots[static_cast<size_t>(router_.ShardOf(o))];
    if (snapshot != nullptr) {
      merged[static_cast<size_t>(o)] = snapshot->Prediction(o);
    }
  }
  return merged;
}

FusionServiceStats FusionService::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  FusionServiceStats copy = stats_;
  copy.queries = queries_.Value();
  copy.uptime_seconds = uptime_.ElapsedSeconds();
  copy.recovered = recovered_;
  copy.lifetime_batches = applied_batches_.load(std::memory_order_relaxed);
  // The per-shard session state survives checkpoint/Restore, so these
  // sums are stream-lifetime values even right after a Recover().
  for (const FusionSession::Stats& shard : session_stats_) {
    copy.lifetime_relearns += shard.num_relearns;
    copy.lifetime_observations += shard.num_observations;
  }
  return copy;
}

std::vector<FusionSession::Stats> FusionService::SessionStats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return session_stats_;
}

void FusionService::UpdateObsGauges() const {
  if (!obs::Enabled()) return;
  static obs::Gauge* queue_depth =
      obs::GetGauge("slimfast_serve_queue_depth");
  static obs::Gauge* snapshot_age =
      obs::GetGauge("slimfast_serve_snapshot_age_seconds");
  static obs::Gauge* snapshot_version =
      obs::GetGauge("slimfast_serve_snapshot_version");
  static obs::Gauge* uptime = obs::GetGauge("slimfast_serve_uptime_seconds");
  static obs::Gauge* queries = obs::GetGauge("slimfast_serve_queries");
  queue_depth->Set(static_cast<double>(queue_.size()));
  const int64_t published_ns = last_publish_ns_.load(std::memory_order_relaxed);
  snapshot_age->Set(
      published_ns == 0
          ? 0.0
          : static_cast<double>(NowNanos() - published_ns) * 1e-9);
  snapshot_version->Set(
      static_cast<double>(applied_batches_.load(std::memory_order_relaxed)));
  uptime->Set(uptime_.ElapsedSeconds());
  queries->Set(static_cast<double>(queries_.Value()));
}

void FusionService::UpdateSessionStatsLocked() {
  session_stats_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    session_stats_[s] = shards_[s].session->stats();
  }
}

Result<std::vector<FusionSnapshotPtr>> OfflineShardedReplay(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    const FusionServiceOptions& options,
    const std::vector<ObservationBatch>& batches, FeatureSpace features) {
  ShardRouter router(options.num_shards);
  const int32_t num_shards = router.num_shards();
  std::vector<FusionSession> sessions;
  sessions.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    SLIMFAST_ASSIGN_OR_RETURN(
        FusionSession session,
        FusionSession::Create(num_sources, num_objects, num_values,
                              ShardSessionOptions(options, s), features));
    sessions.push_back(std::move(session));
  }

  std::vector<int32_t> pending(static_cast<size_t>(num_shards), 0);
  auto relearn_pending = [&]() -> Status {
    for (int32_t s = 0; s < num_shards; ++s) {
      if (pending[static_cast<size_t>(s)] == 0) continue;
      // Mirrors the live driver: truth-only shards stay pending until
      // they have observations to fit against.
      if (sessions[static_cast<size_t>(s)].num_observations() > 0) {
        SLIMFAST_RETURN_NOT_OK(
            sessions[static_cast<size_t>(s)].Relearn().status());
        pending[static_cast<size_t>(s)] = 0;
      }
    }
    return Status::OK();
  };

  int64_t applied = 0;
  for (const ObservationBatch& batch : batches) {
    const std::vector<ObservationBatch> subs = router.Split(batch);
    for (int32_t s = 0; s < num_shards; ++s) {
      const ObservationBatch& sub = subs[static_cast<size_t>(s)];
      if (sub.empty()) continue;
      SLIMFAST_RETURN_NOT_OK(
          sessions[static_cast<size_t>(s)].Ingest(sub).status());
      ++pending[static_cast<size_t>(s)];
    }
    ++applied;
    if (RelearnDue(applied, options.relearn_every_batches)) {
      SLIMFAST_RETURN_NOT_OK(relearn_pending());
    }
  }
  SLIMFAST_RETURN_NOT_OK(relearn_pending());  // the Drain/Stop flush

  std::vector<FusionSnapshotPtr> snapshots;
  snapshots.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    snapshots.push_back(sessions[static_cast<size_t>(s)].ExportSnapshot());
  }
  return snapshots;
}

}  // namespace slimfast
