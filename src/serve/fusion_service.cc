#include "serve/fusion_service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <utility>

#include "obs/clock.h"
#include "obs/event_log.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/durability.h"

namespace slimfast {

namespace {

/// The per-shard session configuration both the live service and the
/// offline oracle build from — one definition, so the replayed shard is
/// configured exactly like the served one.
FusionSessionOptions ShardSessionOptions(const FusionServiceOptions& options,
                                         int32_t shard) {
  FusionSessionOptions session = options.session;
  session.name += "-shard" + std::to_string(shard);
  return session;
}

/// The count-based relearn trigger: pure in the number of applied
/// batches, so live and offline replays fire at identical points.
bool RelearnDue(int64_t applied_batches, int32_t every_batches) {
  return every_batches > 0 && applied_batches % every_batches == 0;
}

/// Monotonic nanos; every serve timestamp (uptime, snapshot age,
/// staleness anchors, heartbeat, recorder buckets) reads the one
/// obs::Clock so they share an epoch and tests can pin them together.
int64_t NowNanos() { return obs::Clock::NowNanos(); }

/// The QUERY verb's latency histogram — the watchdog's query_p99 input.
/// One name shared with the line protocol's per-verb timer, so HEALTH
/// judges exactly the latency clients see.
obs::LatencyHistogram* QueryVerbHistogram() {
  static obs::LatencyHistogram* hist = obs::GetHistogram(
      "slimfast_serve_verb_latency_seconds{verb=\"QUERY\"}");
  return hist;
}

/// Registers the per-shard stage timer for (`stage`, `shard`).
obs::LatencyHistogram* StageHistogram(const char* stage, int32_t shard) {
  return obs::GetHistogram(
      std::string("slimfast_serve_stage_seconds{stage=\"") + stage +
      "\",shard=\"" + std::to_string(shard) + "\"}");
}

}  // namespace

FusionService::FusionService(FusionServiceOptions options,
                             int32_t num_sources, int32_t num_objects,
                             int32_t num_values)
    : options_(std::move(options)),
      num_sources_(num_sources),
      num_objects_(num_objects),
      num_values_(num_values),
      router_(options_.num_shards),
      shard_exec_(options_.shard_exec),
      queue_(options_.queue_capacity),
      created_ns_(NowNanos()) {
  last_tick_ns_.store(created_ns_, std::memory_order_relaxed);
}

Result<std::unique_ptr<FusionService>> FusionService::Create(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    FusionServiceOptions options, FeatureSpace features) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.max_coalesced_batches == 0) options.max_coalesced_batches = 1;
  if (options.scheduler.warm_budget_per_cycle < 0) {
    options.scheduler.warm_budget_per_cycle = 0;
  }
  if (options.scheduler.cold_budget_per_cycle < 0) {
    options.scheduler.cold_budget_per_cycle = 0;
  }
  if (options.scheduler.max_deferred_cycles < 0) {
    options.scheduler.max_deferred_cycles = 0;
  }

  std::unique_ptr<FusionService> service(new FusionService(
      std::move(options), num_sources, num_objects, num_values));
  const int32_t num_shards = service->router_.num_shards();
  service->shards_.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    SLIMFAST_ASSIGN_OR_RETURN(
        FusionSession session,
        FusionSession::Create(num_sources, num_objects, num_values,
                              ShardSessionOptions(service->options_, s),
                              features));
    Shard shard;
    shard.session = std::make_unique<FusionSession>(std::move(session));
    // Registered unconditionally (registration is one mutexed map
    // lookup per shard per service); recording stays behind
    // obs::Enabled() so a disabled process never touches them.
    shard.ingest_hist = StageHistogram("ingest", s);
    shard.relearn_hist = StageHistogram("relearn", s);
    shard.publish_hist = StageHistogram("publish", s);
    service->shards_.push_back(std::move(shard));
    service->slots_.push_back(std::make_unique<SnapshotSlot>());
  }
  // Value-initialized (all zero): nothing is pending at creation.
  service->pending_since_ns_.reset(new std::atomic<int64_t>[
      static_cast<size_t>(num_shards)]());
  service->sched_state_.resize(static_cast<size_t>(num_shards));
  const SchedulerOptions& sched = service->options_.scheduler;
  if (sched.enabled) {
    service->scheduler_ =
        std::make_unique<RelearnScheduler>(sched, num_shards);
    service->traffic_.reset(
        new obs::ShardedCounter[static_cast<size_t>(num_shards)]);
    service->last_traffic_.assign(static_cast<size_t>(num_shards), 0);
  }
  if (sched.shed_queue_watermark > 0.0) {
    double batches = sched.shed_queue_watermark *
                     static_cast<double>(service->options_.queue_capacity);
    service->shed_queue_batches_ =
        std::max<size_t>(1, static_cast<size_t>(batches));
  }
  service->watchdog_ =
      std::make_unique<obs::SloWatchdog>(service->options_.slo);
  if (service->options_.durability.enabled()) {
    SLIMFAST_RETURN_NOT_OK(service->RecoverFromDir(features));
  }
  service->PublishInitialSnapshots();
  {
    std::lock_guard<std::mutex> lock(service->state_mu_);
    service->UpdateSessionStatsLocked();
  }
  service->driver_ = std::thread([raw = service.get()] { raw->DriverLoop(); });
  return service;
}

Result<std::unique_ptr<FusionService>> FusionService::Recover(
    std::string wal_dir, int32_t num_sources, int32_t num_objects,
    int32_t num_values, FusionServiceOptions options,
    FeatureSpace features) {
  if (wal_dir.empty()) {
    return Status::InvalidArgument("Recover needs a non-empty wal_dir");
  }
  options.durability.wal_dir = std::move(wal_dir);
  return Create(num_sources, num_objects, num_values, std::move(options),
                std::move(features));
}

Status FusionService::RecoverFromDir(const FeatureSpace& features) {
  obs::TraceSpan span("serve.recover");
  const std::string& dir = options_.durability.wal_dir;
  if (obs::Enabled()) {
    obs::EventLog::Global().Emit(obs::EventSeverity::kInfo, "recovery",
                                 -1, "started dir=" + dir);
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir " + dir + ": " +
                           ec.message());
  }

  Result<CheckpointManifest> manifest = ReadManifest(dir);
  if (manifest.ok()) {
    if (manifest->num_shards != router_.num_shards() ||
        manifest->num_sources != num_sources_ ||
        manifest->num_objects != num_objects_ ||
        manifest->num_values != num_values_) {
      return Status::FailedPrecondition(
          "checkpoint in " + dir +
          " was written by a service with a different topology");
    }
    applied_batches_ = static_cast<int64_t>(manifest->applied_batches);
    recovered_ = true;
    for (int32_t s = 0; s < router_.num_shards(); ++s) {
      SLIMFAST_ASSIGN_OR_RETURN(
          ShardCheckpoint checkpoint,
          ReadShardSnapshot(
              ShardSnapshotPath(dir, s, manifest->applied_batches)));
      const int32_t pending = checkpoint.state.pending_batches;
      SLIMFAST_ASSIGN_OR_RETURN(
          FusionSession session,
          FusionSession::Restore(checkpoint.store,
                                 std::move(checkpoint.state),
                                 ShardSessionOptions(options_, s),
                                 features));
      Shard& shard = shards_[static_cast<size_t>(s)];
      shard.session = std::make_unique<FusionSession>(std::move(session));
      shard.pending = pending;
      shard.last_published_fingerprint = 0;
      if (pending > 0) shard.oldest_pending.Restart();
    }
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  }

  // Replay the acknowledged tail with the live driver's schedule: apply
  // in sequence order, relearn on the same every-K boundaries (with the
  // scheduler enabled, the same budgeted decisions — recovery serves no
  // queries, so the traffic signal is zero, exactly like the offline
  // oracle), then run the drain-equivalent final relearn — so the
  // recovered snapshots are exactly what OfflineShardedReplay computes
  // for the acknowledged prefix.
  int64_t replayed = 0;
  SLIMFAST_RETURN_NOT_OK(ReplayWal(
      dir, static_cast<uint64_t>(applied_batches_),
      [&](const WalRecord& record) -> Status {
        recovered_ = true;
        ApplyBatch(record.batch);
        ++applied_batches_;
        ++replayed;
        CountTriggerRelearn("recover");
        return Status::OK();
      }));
  RelearnPending("recover");

  SLIMFAST_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(dir, options_.durability.wal,
                            static_cast<uint64_t>(applied_batches_) + 1));
  if (obs::Enabled()) {
    obs::EventLog::Global().Emit(
        obs::EventSeverity::kInfo, "recovery", -1,
        "finished applied_batches=" +
            std::to_string(applied_batches_.load()) +
            " replayed=" + std::to_string(replayed) +
            " from_checkpoint=" + (recovered_ && replayed == 0 ? "1" : "0"));
  }
  return Status::OK();
}

FusionService::~FusionService() { Stop(); }

void FusionService::PublishInitialSnapshots() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    slots_[s]->Store(shards_[s].session->ExportSnapshot());
    shards_[s].last_published_fingerprint =
        shards_[s].session->instance()->store.content_fingerprint();
  }
  last_publish_ns_.store(NowNanos(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  stats_.publishes += static_cast<int64_t>(shards_.size());
}

Status FusionService::Submit(ObservationBatch batch) {
  Command command;
  command.batch = std::move(batch);
  command.arrival_ns = NowNanos();
  if (!queue_.Push(std::move(command))) {
    return Status::FailedPrecondition("FusionService is stopped");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.batches_submitted;
  return Status::OK();
}

Status FusionService::TrySubmit(ObservationBatch batch) {
  Command command;
  command.batch = std::move(batch);
  command.arrival_ns = NowNanos();
  if (!queue_.TryPush(std::move(command))) {
    if (queue_.closed()) {
      return Status::FailedPrecondition("FusionService is stopped");
    }
    if (obs::Enabled()) {
      static obs::ShardedCounter* shed =
          obs::GetCounter("slimfast_serve_shed_total");
      shed->Increment();
    }
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.sheds;
    return Status::OutOfRange("ingest queue is full");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.batches_submitted;
  return Status::OK();
}

Status FusionService::SubmitWithBackpressure(ObservationBatch batch,
                                             int64_t* retry_after_ms) {
  if (retry_after_ms != nullptr) *retry_after_ms = 0;
  const SchedulerOptions& sched = options_.scheduler;
  if (!sched.admission_enabled()) return Submit(std::move(batch));
  const bool over_queue =
      shed_queue_batches_ > 0 && queue_.size() >= shed_queue_batches_;
  const bool over_backlog =
      sched.shed_backlog_watermark > 0 &&
      relearn_backlog_.load(std::memory_order_relaxed) >=
          sched.shed_backlog_watermark;
  if (!over_queue && !over_backlog) {
    Status tried = TrySubmit(std::move(batch));
    if (!tried.IsOutOfRange()) {  // accepted, or stopped
      if (tried.ok() && obs::Enabled() &&
          shed_burst_.exchange(false, std::memory_order_relaxed)) {
        obs::EventLog::Global().Emit(obs::EventSeverity::kInfo,
                                     "admission", -1, "shed burst exited");
      }
      return tried;
    }
    if (retry_after_ms != nullptr) *retry_after_ms = RetryHintMs();
    if (obs::Enabled() &&
        !shed_burst_.exchange(true, std::memory_order_relaxed)) {
      obs::EventLog::Global().Emit(obs::EventSeverity::kWarn, "admission",
                                   -1, "shed burst entered reason=queue_full");
    }
    return tried;
  }
  if (queue_.closed()) {
    return Status::FailedPrecondition("FusionService is stopped");
  }
  if (obs::Enabled()) {
    static obs::ShardedCounter* busy_sheds =
        obs::GetCounter("slimfast_serve_busy_sheds_total");
    busy_sheds->Increment();
    if (!shed_burst_.exchange(true, std::memory_order_relaxed)) {
      obs::EventLog::Global().Emit(
          obs::EventSeverity::kWarn, "admission", -1,
          std::string("shed burst entered reason=") +
              (over_queue ? "queue_watermark" : "backlog_watermark"));
    }
  }
  if (retry_after_ms != nullptr) *retry_after_ms = RetryHintMs();
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.sheds;
  return Status::OutOfRange(
      over_queue ? "ingest shed: queue watermark crossed"
                 : "ingest shed: relearn backlog watermark crossed");
}

int64_t FusionService::RetryHintMs() const {
  // ETA until the service works off its current load: one observed
  // relearn-cycle time per queued/pending batch (plus one for the cycle
  // possibly in flight). Deliberately coarse — it is a backoff hint,
  // not a promise.
  const int64_t cycle_ns = ewma_cycle_ns_.load(std::memory_order_relaxed);
  const int64_t pressure =
      static_cast<int64_t>(queue_.size()) +
      relearn_backlog_.load(std::memory_order_relaxed);
  const double eta_ms =
      static_cast<double>(cycle_ns) * static_cast<double>(pressure + 1) * 1e-6;
  int64_t hint = static_cast<int64_t>(eta_ms) + 1;
  if (hint < 1) hint = 1;
  if (hint > 30000) hint = 30000;
  return hint;
}

Status FusionService::Drain() {
  Command command;
  command.flush = true;
  auto ack = std::make_shared<std::promise<void>>();
  std::future<void> done = ack->get_future();
  command.ack = std::move(ack);
  if (!queue_.Push(std::move(command))) {
    // Stopped — but the driver may still be applying the tail of the
    // queue. Wait for shutdown to complete so Drain's contract (all
    // prior submissions applied + published on return) still holds.
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (driver_.joinable()) driver_.join();
    return Status::OK();
  }
  done.wait();
  return Status::OK();
}

Status FusionService::Checkpoint() {
  if (!options_.durability.enabled()) {
    return Status::FailedPrecondition(
        "durability is disabled: create the service with a wal_dir to "
        "checkpoint");
  }
  Command command;
  command.checkpoint = true;
  auto ack = std::make_shared<std::promise<Status>>();
  std::future<Status> done = ack->get_future();
  command.checkpoint_ack = std::move(ack);
  if (!queue_.Push(std::move(command))) {
    return Status::FailedPrecondition("FusionService is stopped");
  }
  return done.get();
}

Status FusionService::WriteCheckpoint() {
  obs::TraceSpan span("serve.checkpoint");
  const std::string& dir = options_.durability.wal_dir;
  const uint64_t applied = static_cast<uint64_t>(applied_batches_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    SLIMFAST_RETURN_NOT_OK(WriteShardSnapshot(
        ShardSnapshotPath(dir, static_cast<int32_t>(s), applied),
        shards_[s].session->instance()->store,
        shards_[s].session->ExportState()));
  }
  CheckpointManifest manifest;
  manifest.applied_batches = applied;
  manifest.num_shards = router_.num_shards();
  manifest.num_sources = num_sources_;
  manifest.num_objects = num_objects_;
  manifest.num_values = num_values_;
  SLIMFAST_RETURN_NOT_OK(WriteManifest(dir, manifest));
  // The manifest rename above is the commit point; everything below is
  // cleanup of state the new checkpoint superseded.
  SLIMFAST_RETURN_NOT_OK(RemoveStaleShardSnapshots(dir, applied));
  if (wal_ != nullptr) {
    SLIMFAST_RETURN_NOT_OK(wal_->Rotate());
    SLIMFAST_RETURN_NOT_OK(wal_->RemoveSegmentsBefore(applied + 1));
  }
  if (obs::Enabled()) {
    obs::EventLog::Global().Emit(
        obs::EventSeverity::kInfo, "checkpoint", -1,
        "written applied_batches=" + std::to_string(applied) +
            " shards=" + std::to_string(shards_.size()));
  }
  return Status::OK();
}

void FusionService::Stop() {
  queue_.Close();  // idempotent; fails further submissions immediately
  // Join under stop_mu_: a concurrent Stop that loses the race blocks
  // here until the winner's join completes, so *every* Stop returns
  // only after the driver has drained, flushed, and exited.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (driver_.joinable()) driver_.join();
}

void FusionService::DriverLoop() {
  // Timed mode serves two masters: the staleness budget's wall-clock
  // sweep and the flight recorder's sampling tick (the pull model — the
  // driver's poll wakeup is the "background thread" the recorder never
  // spawns). With both off the loop blocks indefinitely, costing zero.
  const bool timed =
      options_.staleness_budget_seconds > 0.0 || obs::Enabled();
  const auto poll = std::chrono::milliseconds(10);
  for (;;) {
    std::vector<Command> group =
        timed ? queue_.PopBatchFor(options_.max_coalesced_batches, poll)
              : queue_.PopBatch(options_.max_coalesced_batches);
    if (group.empty()) {
      // An empty timed pop can race with a concurrent Submit + Stop
      // (timeout on an open queue, then close): only break once the
      // queue is both closed and drained — nothing can be pushed after
      // a close, so a non-zero size here means commands still to apply,
      // which the next pop returns immediately. The untimed PopBatch
      // returns empty only when closed-and-drained, so this condition
      // is then always true.
      if (queue_.closed() && queue_.size() == 0) break;
      // Timed wakeup with nothing queued: only the staleness budget and
      // the recorder tick can have work for us.
      if (StalenessExceeded()) RelearnPending("staleness");
      last_tick_ns_.store(NowNanos(), std::memory_order_relaxed);
      MaybeRecordSample();
      continue;
    }
    for (Command& command : group) {
      if (command.flush) {
        RelearnPending("drain");
        // Refresh the exported per-shard counters before acking: a
        // Drain caller reading SessionStats() right after must see the
        // post-flush state (pending 0, fresh relearn durations), not
        // the previous driver step's copy.
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          UpdateSessionStatsLocked();
        }
        if (command.ack != nullptr) command.ack->set_value();
        continue;
      }
      if (command.checkpoint) {
        Status written = WriteCheckpoint();
        if (!written.ok()) {
          std::lock_guard<std::mutex> lock(state_mu_);
          stats_.last_error = "checkpoint: " + written.ToString();
        }
        if (command.checkpoint_ack != nullptr) {
          command.checkpoint_ack->set_value(std::move(written));
        }
        continue;
      }
      // Log before applying: a batch is only acknowledged (applied,
      // counted, relearned against) once it is in the WAL, so the WAL
      // sequence of the last record always equals applied_batches_ —
      // the invariant checkpoint and recovery key off.
      if (wal_ != nullptr) {
        Result<uint64_t> logged = wal_->Append(command.batch);
        if (!logged.ok()) {
          std::lock_guard<std::mutex> lock(state_mu_);
          ++stats_.ingest_failures;
          stats_.last_error = "wal append: " + logged.status().ToString();
          continue;
        }
      }
      ApplyBatch(command.batch, command.arrival_ns);
      ++applied_batches_;
      CountTriggerRelearn("policy");
    }
    if (timed && StalenessExceeded()) RelearnPending("staleness");
    last_tick_ns_.store(NowNanos(), std::memory_order_relaxed);
    MaybeRecordSample();
    std::lock_guard<std::mutex> lock(state_mu_);
    UpdateSessionStatsLocked();
  }
  // Shutdown: everything queued has been applied; give the tail of the
  // stream its relearn and final publication.
  RelearnPending("stop");
  std::lock_guard<std::mutex> lock(state_mu_);
  UpdateSessionStatsLocked();
}

void FusionService::ApplyBatch(const ObservationBatch& batch,
                               int64_t arrival_ns) {
  obs::TraceSpan span("serve.apply_batch");
  if (arrival_ns == 0) arrival_ns = NowNanos();
  const std::vector<ObservationBatch> subs = router_.Split(batch);
  const int32_t num_shards = router_.num_shards();
  std::vector<Status> statuses(static_cast<size_t>(num_shards),
                               Status::OK());
  RunSharded(&shard_exec_, num_shards, [&](int32_t s) {
    const ObservationBatch& sub = subs[static_cast<size_t>(s)];
    if (sub.empty()) return;
    Shard& shard = shards_[static_cast<size_t>(s)];
    obs::TraceSpan shard_span("serve.shard_ingest");
    obs::ScopedTimer timer(shard.ingest_hist);
    Result<IngestStats> ingested = shard.session->Ingest(sub);
    if (!ingested.ok()) {
      statuses[static_cast<size_t>(s)] = ingested.status();
      return;
    }
    if (shard.pending == 0) {
      shard.oldest_pending.Restart();
      // Submit-time anchor: the batch may have queued behind a slow
      // relearn cycle, and that wait is staleness the client saw.
      pending_since_ns_[static_cast<size_t>(s)].store(
          arrival_ns, std::memory_order_relaxed);
    }
    ++shard.pending;
  });

  int64_t observations = 0;
  int64_t truths = 0;
  int64_t failures = 0;
  Status first_failure = Status::OK();
  for (int32_t s = 0; s < num_shards; ++s) {
    const ObservationBatch& sub = subs[static_cast<size_t>(s)];
    if (sub.empty()) continue;
    const Status& status = statuses[static_cast<size_t>(s)];
    if (status.ok()) {
      observations += static_cast<int64_t>(sub.observations.size());
      truths += static_cast<int64_t>(sub.truths.size());
    } else {
      ++failures;
      if (first_failure.ok()) first_failure = status;
    }
  }
  if (obs::Enabled()) {
    static obs::ShardedCounter* applied =
        obs::GetCounter("slimfast_serve_batches_applied_total");
    applied->Increment();
  }
  int64_t backlog = 0;
  for (const Shard& shard : shards_) backlog += shard.pending;
  relearn_backlog_.store(backlog, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.batches_processed;
  stats_.observations_ingested += observations;
  stats_.truths_ingested += truths;
  if (failures > 0) {
    stats_.ingest_failures += failures;
    stats_.last_error = first_failure.ToString();
  }
}

void FusionService::RelearnPending(const char* reason) {
  // The flush path: every pending shard, no budget. Keep the
  // scheduler's bookkeeping in step — after a flush everything is
  // freshly relearned, so deferral counters and staleness baselines
  // reset.
  std::vector<int32_t> all(shards_.size());
  for (size_t s = 0; s < all.size(); ++s) {
    all[s] = static_cast<int32_t>(s);
  }
  RelearnShards(all, reason);
  if (obs::Enabled() && std::strcmp(reason, "staleness") == 0) {
    obs::EventLog::Global().Emit(
        obs::EventSeverity::kInfo, "staleness", -1,
        "staleness sweep published pending shards budget_s=" +
            std::to_string(options_.staleness_budget_seconds));
  }
  if (scheduler_ != nullptr) {
    scheduler_->NoteFlush(applied_batches_.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(state_mu_);
    sched_state_ = scheduler_->shard_state();
  }
}

void FusionService::CountTriggerRelearn(const char* reason) {
  if (!RelearnDue(applied_batches_.load(std::memory_order_relaxed),
                  options_.relearn_every_batches)) {
    return;
  }
  if (scheduler_ != nullptr) {
    ScheduledRelearn();
  } else {
    RelearnPending(reason);
  }
}

void FusionService::ScheduledRelearn() {
  const int32_t num_shards = router_.num_shards();
  std::vector<ShardSchedInput> inputs(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    ShardSchedInput& in = inputs[static_cast<size_t>(s)];
    in.pending = shard.pending;
    in.can_fit = shard.session->num_observations() > 0;
    in.has_model = shard.session->has_model();
    const int64_t total = traffic_[static_cast<size_t>(s)].Value();
    in.traffic = total - last_traffic_[static_cast<size_t>(s)];
    last_traffic_[static_cast<size_t>(s)] = total;
  }
  const std::vector<int32_t> selected = scheduler_->DecideCycle(
      applied_batches_.load(std::memory_order_relaxed), inputs);
  // Drained in the scheduler's priority order: under a serial executor
  // the hottest shard's refreshed snapshot is live before the cheaper
  // candidates (or an expensive forced cold fit) even start.
  if (!selected.empty()) RelearnShards(selected, "sched");
  if (obs::Enabled()) {
    static obs::ShardedCounter* cycles =
        obs::GetCounter("slimfast_serve_sched_cycles_total");
    cycles->Increment();
    for (int32_t s = 0; s < num_shards; ++s) {
      obs::GetGauge("slimfast_serve_sched_priority{shard=\"" +
                    std::to_string(s) + "\"}")
          ->Set(scheduler_->shard_state()[static_cast<size_t>(s)].priority);
    }
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  sched_state_ = scheduler_->shard_state();
  sched_cycles_ = scheduler_->cycles();
}

void FusionService::RelearnShards(const std::vector<int32_t>& order,
                                  const char* reason) {
  obs::TraceSpan span("serve.relearn");
  Stopwatch cycle_watch;
  const int32_t num_shards = router_.num_shards();
  std::vector<Status> statuses(static_cast<size_t>(num_shards),
                               Status::OK());
  std::vector<uint8_t> relearned(static_cast<size_t>(num_shards), 0);
  std::vector<uint8_t> published(static_cast<size_t>(num_shards), 0);
  std::vector<RelearnStats> shard_stats(static_cast<size_t>(num_shards));
  RunSharded(&shard_exec_, static_cast<int32_t>(order.size()),
             [&](int32_t i) {
    const int32_t s = order[static_cast<size_t>(i)];
    Shard& shard = shards_[static_cast<size_t>(s)];
    if (shard.pending == 0) return;
    obs::TraceSpan shard_span("serve.shard_relearn");
    const bool can_fit = shard.session->num_observations() > 0;
    if (can_fit) {
      obs::ScopedTimer timer(shard.relearn_hist);
      Result<RelearnStats> stats = shard.session->Relearn();
      if (!stats.ok()) {
        statuses[static_cast<size_t>(s)] = stats.status();
        return;
      }
      relearned[static_cast<size_t>(s)] = 1;
      shard_stats[static_cast<size_t>(s)] = *stats;
      shard.pending = 0;
      pending_since_ns_[static_cast<size_t>(s)].store(
          0, std::memory_order_relaxed);
    }
    // A shard whose pending batches carried only truth labels has
    // nothing to fit yet: its pending count stays up (the labels are
    // genuinely unabsorbed, matching the session's own counter), but
    // the refreshed evidence publishes once per store change.
    const uint64_t fingerprint =
        shard.session->instance()->store.content_fingerprint();
    if (can_fit || fingerprint != shard.last_published_fingerprint) {
      obs::ScopedTimer timer(shard.publish_hist);
      slots_[static_cast<size_t>(s)]->Store(
          shard.session->ExportSnapshot());
      shard.last_published_fingerprint = fingerprint;
      published[static_cast<size_t>(s)] = 1;
    }
  });

  int64_t relearns = 0;
  int64_t publishes = 0;
  Status first_failure = Status::OK();
  for (int32_t s = 0; s < num_shards; ++s) {
    relearns += relearned[static_cast<size_t>(s)];
    publishes += published[static_cast<size_t>(s)];
    if (!statuses[static_cast<size_t>(s)].ok() && first_failure.ok()) {
      first_failure = statuses[static_cast<size_t>(s)];
    }
  }
  if (publishes > 0) {
    last_publish_ns_.store(NowNanos(), std::memory_order_relaxed);
  }
  if (obs::Enabled()) {
    static obs::ShardedCounter* relearns_total =
        obs::GetCounter("slimfast_serve_relearns_total");
    static obs::ShardedCounter* publishes_total =
        obs::GetCounter("slimfast_serve_publishes_total");
    relearns_total->Add(relearns);
    publishes_total->Add(publishes);
    int32_t max_iterations = 0;
    for (int32_t s = 0; s < num_shards; ++s) {
      if (relearned[static_cast<size_t>(s)] == 0) continue;
      const RelearnStats& rs = shard_stats[static_cast<size_t>(s)];
      if (rs.learn_iterations > max_iterations) {
        max_iterations = rs.learn_iterations;
      }
      obs::SlowLog::Global().Offer(
          "relearn", static_cast<int64_t>(rs.seconds * 1e9), s,
          std::string("algorithm=") +
              (rs.algorithm_used == Algorithm::kErm ? "erm" : "em") +
              " iterations=" + std::to_string(rs.learn_iterations) +
              (rs.warm_started ? " warm=1" : " warm=0"));
      if (!rs.learn_converged) {
        obs::EventLog::Global().Emit(
            obs::EventSeverity::kWarn, "relearn", s,
            std::string("non-converged algorithm=") +
                (rs.algorithm_used == Algorithm::kErm ? "erm" : "em") +
                " iterations=" + std::to_string(rs.learn_iterations) +
                " objective=" + std::to_string(rs.learn_objective));
      }
    }
    if (relearns > 0) {
      obs::TimeSeriesStore::Global()
          .Series("serve.relearn_iterations", obs::SeriesKind::kGauge)
          ->Record(NowNanos(), static_cast<double>(max_iterations));
    }
  }
  int64_t backlog = 0;
  for (const Shard& shard : shards_) backlog += shard.pending;
  relearn_backlog_.store(backlog, std::memory_order_relaxed);
  if (relearns > 0) {
    // EWMA of the relearn-cycle wall time (the ERR BUSY hint's unit).
    const int64_t cycle_ns =
        static_cast<int64_t>(cycle_watch.ElapsedSeconds() * 1e9);
    const int64_t previous =
        ewma_cycle_ns_.load(std::memory_order_relaxed);
    ewma_cycle_ns_.store(
        previous == 0 ? cycle_ns : (3 * previous + cycle_ns) / 4,
        std::memory_order_relaxed);
  }
  const int64_t batch_index =
      applied_batches_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  stats_.relearns += relearns;
  stats_.publishes += publishes;
  if (options_.scheduler.record_schedule) {
    // Recorded in drain order: shards are independent, so any fixed
    // order is a faithful serialization of the cycle, and this one
    // matches what a serial executor actually did.
    for (int32_t s : order) {
      if (relearned[static_cast<size_t>(s)] != 0) {
        schedule_log_.push_back(RelearnEvent{batch_index, s});
      }
    }
  }
  if (!first_failure.ok()) {
    stats_.last_error =
        std::string(reason) + " relearn: " + first_failure.ToString();
  }
}

bool FusionService::StalenessExceeded() const {
  // The driver also polls for the recorder tick; with the budget off a
  // 0.0 threshold must not read every pending batch as "stale".
  if (options_.staleness_budget_seconds <= 0.0) return false;
  for (const Shard& shard : shards_) {
    // Only fittable shards count: a truth-only shard stays pending
    // until observations arrive, and repeatedly "relearning" it would
    // be a no-op storm.
    if (shard.pending > 0 && shard.session->num_observations() > 0 &&
        shard.oldest_pending.ElapsedSeconds() >
            options_.staleness_budget_seconds) {
      return true;
    }
  }
  return false;
}

void FusionService::MaybeRecordSample() {
  if (!obs::Enabled()) return;
  const int64_t now = NowNanos();
  if (last_sample_ns_ != 0 && now - last_sample_ns_ < 1'000'000'000) {
    return;
  }
  last_sample_ns_ = now;
  obs::TimeSeriesStore& store = obs::TimeSeriesStore::Global();
  store.Series("serve.queue_depth", obs::SeriesKind::kGauge)
      ->Record(now, static_cast<double>(queue_.size()));
  store.Series("serve.relearn_backlog", obs::SeriesKind::kGauge)
      ->Record(now, static_cast<double>(
                        relearn_backlog_.load(std::memory_order_relaxed)));
  const int64_t published_ns =
      last_publish_ns_.load(std::memory_order_relaxed);
  store.Series("serve.snapshot_age_seconds", obs::SeriesKind::kGauge)
      ->Record(now, published_ns == 0
                        ? 0.0
                        : obs::Clock::SecondsBetween(published_ns, now));
  store.Series("serve.query_p99_seconds", obs::SeriesKind::kGauge)
      ->Record(now, static_cast<double>(
                        QueryVerbHistogram()->PercentileNanos(0.99)) *
                        1e-9);
  store.Series("serve.batches_applied", obs::SeriesKind::kCounter)
      ->Record(now, static_cast<double>(
                        applied_batches_.load(std::memory_order_relaxed)));
  store.Series("serve.queries", obs::SeriesKind::kCounter)
      ->Record(now, static_cast<double>(queries_.Value()));
  static obs::ShardedCounter* relearns_total =
      obs::GetCounter("slimfast_serve_relearns_total");
  store.Series("serve.relearns", obs::SeriesKind::kCounter)
      ->Record(now, static_cast<double>(relearns_total->Value()));
  if (watchdog_ != nullptr && watchdog_->active()) EvaluateSlo();
}

obs::SloVerdict FusionService::EvaluateSlo() const {
  obs::SloInputs inputs;
  inputs.query_p99_seconds =
      static_cast<double>(QueryVerbHistogram()->PercentileNanos(0.99)) *
      1e-9;
  for (int32_t s = 0; s < router_.num_shards(); ++s) {
    const double age =
        static_cast<double>(ShardPendingAgeNanos(s)) * 1e-9;
    if (age > inputs.max_staleness_seconds) {
      inputs.max_staleness_seconds = age;
    }
  }
  const size_t capacity = queue_.capacity();
  inputs.queue_fraction =
      capacity == 0 ? 0.0
                    : static_cast<double>(queue_.size()) /
                          static_cast<double>(capacity);
  const double heartbeat_age = obs::Clock::SecondsBetween(
      last_tick_ns_.load(std::memory_order_relaxed), NowNanos());
  inputs.heartbeat_age_seconds = heartbeat_age > 0.0 ? heartbeat_age : 0.0;
  inputs.backlog_nonzero =
      relearn_backlog_.load(std::memory_order_relaxed) > 0;

  obs::SloVerdict verdict = watchdog_->Evaluate(inputs);
  for (const obs::SloTransition& t : verdict.transitions) {
    obs::EventLog::Global().Emit(
        t.breached ? obs::EventSeverity::kWarn : obs::EventSeverity::kInfo,
        "slo", -1,
        "rule=" + t.rule + (t.breached ? " breached" : " cleared") +
            " value=" + std::to_string(t.value) +
            " ceiling=" + std::to_string(t.ceiling));
    obs::GetGauge("slimfast_serve_slo_breached{rule=\"" + t.rule + "\"}")
        ->Set(t.breached ? 1.0 : 0.0);
  }
  return verdict;
}

std::string FusionService::Health() const {
  if (!obs::Enabled() || watchdog_ == nullptr || !watchdog_->active()) {
    return "OK";
  }
  const obs::SloVerdict verdict = EvaluateSlo();
  if (verdict.ok) return "OK";
  std::string reply = "DEGRADED ";
  for (size_t i = 0; i < verdict.breached_rules.size(); ++i) {
    if (i > 0) reply += ",";
    reply += verdict.breached_rules[i];
  }
  return reply;
}

void FusionService::RecordShardTraffic(int32_t shard) const {
  // Allocated only when the scheduler is on: the flat policy's query
  // path stays exactly one sharded-counter increment + one atomic load.
  if (traffic_ != nullptr) traffic_[static_cast<size_t>(shard)].Increment();
}

ValueId FusionService::Query(ObjectId object) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return kNoValue;
  const int32_t shard = router_.ShardOf(object);
  RecordShardTraffic(shard);
  FusionSnapshotPtr snapshot = slots_[static_cast<size_t>(shard)]->Load();
  return snapshot == nullptr ? kNoValue : snapshot->Prediction(object);
}

double FusionService::QueryConfidence(ObjectId object) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return 0.0;
  const int32_t shard = router_.ShardOf(object);
  RecordShardTraffic(shard);
  FusionSnapshotPtr snapshot = slots_[static_cast<size_t>(shard)]->Load();
  return snapshot == nullptr ? 0.0 : snapshot->Confidence(object);
}

bool FusionService::QueryPosterior(ObjectId object,
                                   std::vector<ValueId>* values,
                                   std::vector<double>* probs) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return false;
  const int32_t shard = router_.ShardOf(object);
  RecordShardTraffic(shard);
  FusionSnapshotPtr snapshot = slots_[static_cast<size_t>(shard)]->Load();
  return snapshot != nullptr &&
         snapshot->PosteriorOf(object, values, probs);
}

FusionSnapshotPtr FusionService::SnapshotFor(ObjectId object) const {
  queries_.Increment();
  if (object < 0 || object >= num_objects_) return nullptr;
  const int32_t shard = router_.ShardOf(object);
  RecordShardTraffic(shard);
  return slots_[static_cast<size_t>(shard)]->Load();
}

int64_t FusionService::ShardPendingAgeNanos(int32_t shard) const {
  if (shard < 0 || shard >= router_.num_shards()) return 0;
  const int64_t since =
      pending_since_ns_[static_cast<size_t>(shard)].load(
          std::memory_order_relaxed);
  if (since == 0) return 0;
  const int64_t now = NowNanos();
  return now > since ? now - since : 0;
}

FusionSnapshotPtr FusionService::ShardSnapshot(int32_t shard) const {
  if (shard < 0 || shard >= router_.num_shards()) return nullptr;
  return slots_[static_cast<size_t>(shard)]->Load();
}

std::vector<FusionSnapshotPtr> FusionService::AllSnapshots() const {
  std::vector<FusionSnapshotPtr> snapshots;
  snapshots.reserve(slots_.size());
  for (const auto& slot : slots_) snapshots.push_back(slot->Load());
  return snapshots;
}

std::vector<ValueId> FusionService::MergedPredictions() const {
  const std::vector<FusionSnapshotPtr> snapshots = AllSnapshots();
  std::vector<ValueId> merged(static_cast<size_t>(num_objects_), kNoValue);
  for (ObjectId o = 0; o < num_objects_; ++o) {
    const FusionSnapshotPtr& snapshot =
        snapshots[static_cast<size_t>(router_.ShardOf(o))];
    if (snapshot != nullptr) {
      merged[static_cast<size_t>(o)] = snapshot->Prediction(o);
    }
  }
  return merged;
}

FusionServiceStats FusionService::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  FusionServiceStats copy = stats_;
  copy.queries = queries_.Value();
  copy.uptime_seconds = obs::Clock::SecondsBetween(created_ns_, NowNanos());
  copy.recovered = recovered_;
  copy.lifetime_batches = applied_batches_.load(std::memory_order_relaxed);
  // The per-shard session state survives checkpoint/Restore, so these
  // sums are stream-lifetime values even right after a Recover().
  for (const FusionSession::Stats& shard : session_stats_) {
    copy.lifetime_relearns += shard.num_relearns;
    copy.lifetime_observations += shard.num_observations;
  }
  return copy;
}

std::vector<FusionSession::Stats> FusionService::SessionStats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return session_stats_;
}

SchedulerInspection FusionService::SchedStats() const {
  SchedulerInspection out;
  out.enabled = scheduler_ != nullptr;
  if (out.enabled) {
    out.warm_budget = options_.scheduler.warm_budget_per_cycle;
    out.cold_budget = options_.scheduler.cold_budget_per_cycle;
    out.max_deferred_cycles = options_.scheduler.max_deferred_cycles;
  }
  out.queue_depth = queue_.size();
  out.queue_capacity = queue_.capacity();
  out.backlog = relearn_backlog_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  out.sheds = stats_.sheds;
  out.cycles = sched_cycles_;
  out.shards = sched_state_;
  if (!out.enabled) {
    // Flat policy: the priority machinery is off, but pending counts
    // are still worth reporting.
    for (size_t s = 0; s < out.shards.size() && s < session_stats_.size();
         ++s) {
      out.shards[s].pending =
          static_cast<int32_t>(session_stats_[s].pending_batches);
    }
  }
  return out;
}

std::vector<RelearnEvent> FusionService::RelearnSchedule() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return schedule_log_;
}

void FusionService::UpdateObsGauges() const {
  if (!obs::Enabled()) return;
  static obs::Gauge* queue_depth =
      obs::GetGauge("slimfast_serve_queue_depth");
  static obs::Gauge* snapshot_age =
      obs::GetGauge("slimfast_serve_snapshot_age_seconds");
  static obs::Gauge* snapshot_version =
      obs::GetGauge("slimfast_serve_snapshot_version");
  static obs::Gauge* uptime = obs::GetGauge("slimfast_serve_uptime_seconds");
  static obs::Gauge* queries = obs::GetGauge("slimfast_serve_queries");
  static obs::Gauge* backlog =
      obs::GetGauge("slimfast_serve_relearn_backlog");
  queue_depth->Set(static_cast<double>(queue_.size()));
  backlog->Set(static_cast<double>(
      relearn_backlog_.load(std::memory_order_relaxed)));
  const int64_t published_ns = last_publish_ns_.load(std::memory_order_relaxed);
  snapshot_age->Set(
      published_ns == 0
          ? 0.0
          : static_cast<double>(NowNanos() - published_ns) * 1e-9);
  snapshot_version->Set(
      static_cast<double>(applied_batches_.load(std::memory_order_relaxed)));
  uptime->Set(obs::Clock::SecondsBetween(created_ns_, NowNanos()));
  queries->Set(static_cast<double>(queries_.Value()));
}

void FusionService::UpdateSessionStatsLocked() {
  session_stats_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    session_stats_[s] = shards_[s].session->stats();
  }
}

namespace {

/// Builds the offline per-shard sessions both replay oracles run over —
/// configured exactly like the live service's shards.
Result<std::vector<FusionSession>> MakeOfflineShardSessions(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    const FusionServiceOptions& options, const FeatureSpace& features,
    int32_t num_shards) {
  std::vector<FusionSession> sessions;
  sessions.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    SLIMFAST_ASSIGN_OR_RETURN(
        FusionSession session,
        FusionSession::Create(num_sources, num_objects, num_values,
                              ShardSessionOptions(options, s), features));
    sessions.push_back(std::move(session));
  }
  return sessions;
}

}  // namespace

Result<std::vector<FusionSnapshotPtr>> OfflineShardedReplay(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    const FusionServiceOptions& options,
    const std::vector<ObservationBatch>& batches, FeatureSpace features) {
  ShardRouter router(options.num_shards);
  const int32_t num_shards = router.num_shards();
  SLIMFAST_ASSIGN_OR_RETURN(
      std::vector<FusionSession> sessions,
      MakeOfflineShardSessions(num_sources, num_objects, num_values,
                               options, features, num_shards));

  std::vector<int32_t> pending(static_cast<size_t>(num_shards), 0);
  auto relearn_shard = [&](int32_t s) -> Status {
    if (pending[static_cast<size_t>(s)] == 0) return Status::OK();
    // Mirrors the live driver: truth-only shards stay pending until
    // they have observations to fit against.
    if (sessions[static_cast<size_t>(s)].num_observations() > 0) {
      SLIMFAST_RETURN_NOT_OK(
          sessions[static_cast<size_t>(s)].Relearn().status());
      pending[static_cast<size_t>(s)] = 0;
    }
    return Status::OK();
  };
  auto relearn_pending = [&]() -> Status {
    for (int32_t s = 0; s < num_shards; ++s) {
      SLIMFAST_RETURN_NOT_OK(relearn_shard(s));
    }
    return Status::OK();
  };

  // The same decision engine the live driver runs, fed a zero traffic
  // signal — what a live scheduler-driven service that served no
  // queries decides.
  std::unique_ptr<RelearnScheduler> scheduler;
  if (options.scheduler.enabled) {
    scheduler = std::make_unique<RelearnScheduler>(options.scheduler,
                                                   num_shards);
  }

  int64_t applied = 0;
  for (const ObservationBatch& batch : batches) {
    const std::vector<ObservationBatch> subs = router.Split(batch);
    for (int32_t s = 0; s < num_shards; ++s) {
      const ObservationBatch& sub = subs[static_cast<size_t>(s)];
      if (sub.empty()) continue;
      SLIMFAST_RETURN_NOT_OK(
          sessions[static_cast<size_t>(s)].Ingest(sub).status());
      ++pending[static_cast<size_t>(s)];
    }
    ++applied;
    if (RelearnDue(applied, options.relearn_every_batches)) {
      if (scheduler != nullptr) {
        std::vector<ShardSchedInput> inputs(
            static_cast<size_t>(num_shards));
        for (int32_t s = 0; s < num_shards; ++s) {
          ShardSchedInput& in = inputs[static_cast<size_t>(s)];
          in.pending = pending[static_cast<size_t>(s)];
          in.can_fit =
              sessions[static_cast<size_t>(s)].num_observations() > 0;
          in.has_model = sessions[static_cast<size_t>(s)].has_model();
          in.traffic = 0;
        }
        for (int32_t s : scheduler->DecideCycle(applied, inputs)) {
          SLIMFAST_RETURN_NOT_OK(relearn_shard(s));
        }
      } else {
        SLIMFAST_RETURN_NOT_OK(relearn_pending());
      }
    }
  }
  SLIMFAST_RETURN_NOT_OK(relearn_pending());  // the Drain/Stop flush

  std::vector<FusionSnapshotPtr> snapshots;
  snapshots.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    snapshots.push_back(sessions[static_cast<size_t>(s)].ExportSnapshot());
  }
  return snapshots;
}

Result<std::vector<FusionSnapshotPtr>> OfflineReplayWithSchedule(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    const FusionServiceOptions& options,
    const std::vector<ObservationBatch>& batches,
    const std::vector<RelearnEvent>& schedule, FeatureSpace features) {
  ShardRouter router(options.num_shards);
  const int32_t num_shards = router.num_shards();
  SLIMFAST_ASSIGN_OR_RETURN(
      std::vector<FusionSession> sessions,
      MakeOfflineShardSessions(num_sources, num_objects, num_values,
                               options, features, num_shards));

  // Execute every recorded event whose batch index is <= `applied`, in
  // log order. The log only records relearns that actually ran, so a
  // replayed event's shard is guaranteed fittable at its batch index —
  // the num_observations guard just keeps a corrupted log from
  // aborting on an unfittable session.
  size_t next = 0;
  auto run_due = [&](int64_t applied) -> Status {
    while (next < schedule.size() &&
           schedule[next].batch_index <= applied) {
      const int32_t s = schedule[next].shard;
      if (s < 0 || s >= num_shards) {
        return Status::InvalidArgument(
            "relearn schedule names shard " + std::to_string(s) +
            " outside the " + std::to_string(num_shards) +
            "-shard topology");
      }
      if (sessions[static_cast<size_t>(s)].num_observations() > 0) {
        SLIMFAST_RETURN_NOT_OK(
            sessions[static_cast<size_t>(s)].Relearn().status());
      }
      ++next;
    }
    return Status::OK();
  };

  int64_t applied = 0;
  SLIMFAST_RETURN_NOT_OK(run_due(applied));
  for (const ObservationBatch& batch : batches) {
    const std::vector<ObservationBatch> subs = router.Split(batch);
    for (int32_t s = 0; s < num_shards; ++s) {
      const ObservationBatch& sub = subs[static_cast<size_t>(s)];
      if (sub.empty()) continue;
      SLIMFAST_RETURN_NOT_OK(
          sessions[static_cast<size_t>(s)].Ingest(sub).status());
    }
    ++applied;
    SLIMFAST_RETURN_NOT_OK(run_due(applied));
  }
  // Tail events beyond the last batch (impossible for a well-formed
  // log, harmless to honor).
  SLIMFAST_RETURN_NOT_OK(run_due(INT64_MAX));

  std::vector<FusionSnapshotPtr> snapshots;
  snapshots.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    snapshots.push_back(sessions[static_cast<size_t>(s)].ExportSnapshot());
  }
  return snapshots;
}

}  // namespace slimfast
