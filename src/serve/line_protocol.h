#ifndef SLIMFAST_SERVE_LINE_PROTOCOL_H_
#define SLIMFAST_SERVE_LINE_PROTOCOL_H_

#include <string>

#include "data/observation_store.h"
#include "serve/fusion_service.h"

namespace slimfast {

/// The text protocol behind `slimfast_cli serve`: one command per line,
/// one reply line per command. Decoupled from any transport — the CLI
/// drives it from stdin, a socket server would drive it per connection,
/// and the tests drive it directly.
///
/// Commands (ids are the dense integer ids of the service's universe):
///
///   OBS <object> <source> <value>   buffer one observation   -> OK
///   TRUTH <object> <value>          buffer one truth label   -> OK
///   COMMIT                          submit buffered batch    -> OK n m
///   QUERY <object>                  current MAP estimate     -> VALUE v c
///                                   (c = posterior confidence) or NONE
///   POSTERIOR <object>              posterior distribution   -> POSTERIOR
///                                   v:p v:p ... or NONE
///   STATS                           service counters         -> STATS ...
///   METRICS                         Prometheus dump          -> multi-line,
///                                   "# EOF" terminated
///   HEALTH                          SLO watchdog verdict     -> OK or
///                                   DEGRADED <rule>[,<rule>...]
///   HISTORY [series] [window]       flight-recorder          -> multi-line,
///                                   time-series (bare HISTORY lists the
///                                   series names), "# EOF" terminated
///   EVENTS [n]                      recent structured events -> multi-line,
///                                   "# EOF" terminated
///   SLOW [n]                        slow-operation exemplars -> multi-line,
///                                   "# EOF" terminated
///   SCHED                           scheduler + admission    -> SCHED ...
///                                   state (per-shard priorities)
///   CHECKPOINT                      durable checkpoint + WAL -> OK
///                                   truncation (needs wal_dir)
///   DRAIN                           block until applied      -> OK
///   QUIT                            end the session          -> BYE
///
/// Malformed or unknown input gets a single `ERR <reason>` reply and
/// leaves all state unchanged. When admission control is configured
/// (see SchedulerOptions) an over-watermark COMMIT is shed with
/// `ERR BUSY retry_after_ms=<hint> ...` and the client's buffer is
/// kept for retry. Queries go straight to the wait-free snapshot path;
/// only COMMIT/DRAIN touch the ingest pipeline.
///
/// The full protocol reference (grammar, reply shapes, ordering and
/// ack semantics, a worked transcript) lives in docs/PROTOCOL.md.
class LineProtocol {
 public:
  /// Binds the protocol to `service` (borrowed; must outlive this).
  explicit LineProtocol(FusionService* service) : service_(service) {}

  /// Executes one command line and returns the reply (no trailing
  /// newline; METRICS replies span multiple lines, terminated by a
  /// "# EOF" line). Sets `*quit` to true on QUIT when `quit` is
  /// non-null. When observability is enabled the verb's wall time is
  /// recorded into slimfast_serve_verb_latency_seconds{verb=...}.
  std::string HandleLine(const std::string& line, bool* quit = nullptr);

  /// Observations + truths buffered toward the next COMMIT.
  int64_t buffered() const { return pending_.size(); }

 private:
  /// HandleLine minus the verb-latency envelope.
  std::string HandleLineInner(const std::string& line, bool* quit);

  FusionService* service_;
  ObservationBatch pending_;
};

}  // namespace slimfast

#endif  // SLIMFAST_SERVE_LINE_PROTOCOL_H_
