#ifndef SLIMFAST_SERVE_FUSION_SERVICE_H_
#define SLIMFAST_SERVE_FUSION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fusion_session.h"
#include "core/snapshot.h"
#include "data/feature_space.h"
#include "data/observation_store.h"
#include "exec/mpsc_queue.h"
#include "exec/options.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/watchdog.h"
#include "serve/router.h"
#include "serve/scheduler.h"
#include "serve/snapshot_slot.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace slimfast {

/// Durability configuration of a FusionService. With a non-empty
/// `wal_dir` the ingest driver appends every batch to an observation
/// WAL *before* applying it, Checkpoint() persists per-shard snapshots
/// there, and Create/Recover replays snapshot-then-WAL-tail on startup
/// — so a crashed service comes back with the exact store fingerprint
/// and bit-identical snapshots of an uninterrupted replay of its
/// acknowledged prefix.
struct FusionServiceDurability {
  /// Directory for WAL segments + checkpoints; empty = in-memory only.
  std::string wal_dir;
  /// WAL fsync/rotation policy (see WalOptions).
  WalOptions wal;

  bool enabled() const { return !wal_dir.empty(); }
};

/// Configuration of a concurrent fusion service.
struct FusionServiceOptions {
  /// Shards the object universe is hash-partitioned across (>= 1). Each
  /// shard is one FusionSession; per-shard work (delta-compile, relearn,
  /// publish) fans out across shards on the service executor.
  int32_t num_shards = 4;
  /// Capacity of the bounded ingest queue, in batches. A full queue
  /// blocks Submit (backpressure) — callers that prefer shedding use
  /// TrySubmit.
  size_t queue_capacity = 64;
  /// Most batches the ingest driver absorbs per wakeup. Coalescing
  /// amortizes the shard fan-out over bursts without changing results
  /// (batches are still applied strictly in submission order).
  size_t max_coalesced_batches = 8;
  /// Relearn policy, part 1: relearn + publish every K processed batches
  /// (shards that saw no new data since their last relearn skip the
  /// cycle). 0 disables the count trigger, leaving staleness and drain.
  int32_t relearn_every_batches = 1;
  /// Relearn policy, part 2: a freshness bound. When > 0, any ingested
  /// batch not yet covered by a relearn forces one once it has waited
  /// this long. Wall-clock-driven, so trigger *timing* is not
  /// reproducible — use the pure every-K policy where the sharded-replay
  /// determinism contract must hold bitwise (see class comment).
  double staleness_budget_seconds = 0.0;
  /// Template for every shard's FusionSession (seed, learner options,
  /// warm start). The session name gets a per-shard suffix.
  FusionSessionOptions session;
  /// Thread budget for the shard fan-out (0 = SLIMFAST_THREADS, then 1).
  ExecOptions shard_exec;
  /// WAL + checkpoint configuration (disabled by default).
  FusionServiceDurability durability;
  /// Relearn policy, part 3: the traffic-aware scheduler + ingest
  /// admission control (both disabled by default — the flat every-K
  /// policy above then drains every pending shard per trigger). See
  /// SchedulerOptions.
  SchedulerOptions scheduler;
  /// SLO rules the flight-recorder watchdog evaluates on the driver's
  /// sampling tick and on demand via HEALTH (all off by default; see
  /// SloWatchdogOptions). Purely observational — breaches flip gauges
  /// and emit events, never change scheduling or results.
  obs::SloWatchdogOptions slo;
};

/// Operational counters of a FusionService (see stats()).
struct FusionServiceStats {
  /// Batches accepted into the ingest queue so far.
  int64_t batches_submitted = 0;
  /// Batches fully applied to their shards (ingest done; relearns follow
  /// the policy).
  int64_t batches_processed = 0;
  /// Observations absorbed across all shards.
  int64_t observations_ingested = 0;
  /// Truth labels absorbed across all shards.
  int64_t truths_ingested = 0;
  /// Per-shard relearns completed.
  int64_t relearns = 0;
  /// Snapshot publications (one per shard relearn, plus the initial
  /// empty snapshots).
  int64_t publishes = 0;
  /// Batches whose ingest failed validation on some shard (the shard is
  /// left unchanged; see last_error).
  int64_t ingest_failures = 0;
  /// Queries served since Create (wait-free sharded counter).
  int64_t queries = 0;
  /// Batches rejected by admission control or a full-queue TrySubmit
  /// (the producer kept its data; see SubmitWithBackpressure).
  int64_t sheds = 0;
  /// Message of the most recent ingest/relearn failure ("" when none).
  std::string last_error;

  // --- Recovery-aware fields ---------------------------------------------
  //
  // The counters above are *process-scoped*: they count work done by
  // this FusionService object, which after a Recover() includes the
  // replayed WAL tail but not the checkpointed prefix. The `lifetime_*`
  // counters below are *stream-scoped*: they are reconstructed from
  // durable state (the WAL sequence and the per-shard session state the
  // checkpoint carries), so they keep counting monotonically across
  // crash/recover cycles instead of silently restarting near zero.

  /// Seconds since this service object was created (includes any
  /// recovery replay time).
  double uptime_seconds = 0.0;
  /// True when Create restored a checkpoint and/or replayed WAL records.
  bool recovered = false;
  /// Batches applied over the stream's lifetime — equal to the WAL
  /// sequence of the last applied batch, so it survives Recover() by
  /// construction.
  int64_t lifetime_batches = 0;
  /// Relearns completed over the stream's lifetime (summed from the
  /// per-shard session state, which checkpoints carry).
  int64_t lifetime_relearns = 0;
  /// Observations absorbed over the stream's lifetime (summed from the
  /// per-shard stores, which checkpoints carry).
  int64_t lifetime_observations = 0;
};

/// Consistent snapshot of the scheduler + admission-control state, as
/// reported by the SCHED verb: the configured budgets, the live queue
/// depth and relearn backlog, the shed count, and the per-shard
/// priority state of the most recent decision cycle.
struct SchedulerInspection {
  /// True when the traffic-aware scheduler drives relearns (otherwise
  /// the flat policy does and the per-shard priorities stay 0).
  bool enabled = false;
  /// Warm-queue relearn budget per decision cycle (0 = unlimited).
  int32_t warm_budget = 0;
  /// Cold-queue (first-fit) relearn budget per cycle (0 = unlimited).
  int32_t cold_budget = 0;
  /// Decisions a pending shard can lose before it is forced.
  int32_t max_deferred_cycles = 0;
  /// Decision cycles run so far.
  int64_t cycles = 0;
  /// Batches waiting in the ingest queue right now.
  size_t queue_depth = 0;
  /// Capacity of the ingest queue, in batches.
  size_t queue_capacity = 0;
  /// Sum of per-shard pending batches (the relearn backlog).
  int64_t backlog = 0;
  /// Batches shed by admission control / full-queue TrySubmit.
  int64_t sheds = 0;
  /// Per-shard priority/pending/traffic/deferral state.
  std::vector<ShardSchedState> shards;
};

/// A concurrent fusion serving layer: sharded ingest/relearn behind a
/// bounded queue, wait-free snapshot queries in front.
///
/// The object universe is hash-partitioned across N `FusionSession`s
/// (`ShardRouter`). Producers `Submit` observation batches into a
/// bounded MPSC queue; a background driver pops them (coalescing
/// bursts), splits each batch by shard, and fans the per-shard
/// Ingest → Relearn → Publish work across the exec thread pool. Each
/// relearn exports an immutable `FusionSnapshot` that is swapped into
/// the shard's `SnapshotSlot`; `Query` routes to the owning shard and
/// reads the current snapshot through one atomic pointer load — queries
/// never take an ingest-path lock and keep being served, from the last
/// published snapshot, while shards are mid-relearn.
///
/// **Sharded-replay determinism contract.** Routing is a pure function
/// of (object id, shard count), batches are applied in submission order,
/// and with the pure every-K relearn policy every trigger is a function
/// of the batch index alone. Each shard therefore computes exactly what
/// a single offline `FusionSession`, fed that shard's slice of the
/// stream on one thread, computes — bit for bit, at any thread count and
/// under any concurrent query load (`OfflineShardedReplay` is the
/// oracle; with num_shards = 1 it *is* the plain offline single-session
/// run of the full stream). The traffic-aware scheduler preserves the
/// contract: its decisions are a deterministic function of (batch
/// index, per-shard pending/model state, traffic samples, config), so a
/// run without queries matches the zero-traffic oracle directly, and
/// any run re-verifies against its recorded relearn schedule
/// (`OfflineReplayWithSchedule`). The wall-clock staleness trigger is
/// the one knob that trades the *a-priori* replay guarantee for
/// freshness — though even its relearns land in the recorded schedule.
///
/// Thread roles: any number of producers (Submit/TrySubmit/Drain), any
/// number of query threads (Query*/ShardSnapshot — wait-free), one
/// internal driver. Stop() (or destruction) drains the queue, runs a
/// final relearn over pending data, publishes, and joins the driver.
class FusionService {
 public:
  /// Builds a service over a fixed id universe, spawns the ingest
  /// driver, and publishes an initial (model-free) snapshot per shard so
  /// queries are valid immediately. Fails on invalid dimensions or a
  /// session configuration the incremental engine rejects (e.g. the
  /// copying extension).
  static Result<std::unique_ptr<FusionService>> Create(
      int32_t num_sources, int32_t num_objects, int32_t num_values,
      FusionServiceOptions options = {},
      FeatureSpace features = FeatureSpace());

  /// Create with durability rooted at `wal_dir`: restores the latest
  /// checkpoint (if any), replays the WAL tail with the same every-K
  /// relearn schedule the live driver uses, runs the drain-equivalent
  /// final relearn, and resumes logging. The recovered snapshots are
  /// bit-identical to `OfflineShardedReplay` over the log's
  /// acknowledged prefix. On a fresh directory this is just a durable
  /// Create.
  static Result<std::unique_ptr<FusionService>> Recover(
      std::string wal_dir, int32_t num_sources, int32_t num_objects,
      int32_t num_values, FusionServiceOptions options = {},
      FeatureSpace features = FeatureSpace());

  /// Stops the service (drains + final publish) if still running.
  ~FusionService();

  FusionService(const FusionService&) = delete;
  FusionService& operator=(const FusionService&) = delete;

  // --- Producer side ---------------------------------------------------

  /// Enqueues one batch, blocking while the queue is full. Fails only
  /// after Stop(). Validation happens at ingest: a bad batch surfaces in
  /// stats().ingest_failures / last_error, never crashes the driver.
  Status Submit(ObservationBatch batch);

  /// Non-blocking Submit; OutOfRange when the queue is full (shed load).
  Status TrySubmit(ObservationBatch batch);

  /// Submit with admission control: when a configured watermark
  /// (SchedulerOptions::shed_queue_watermark / shed_backlog_watermark)
  /// is crossed — or the queue is outright full — the batch is shed
  /// with OutOfRange and `*retry_after_ms` (if non-null) is set to a
  /// backoff hint derived from the observed relearn-cycle time and the
  /// current queue + backlog depth. With admission control disabled
  /// this is exactly Submit (blocking backpressure, no hint). The
  /// COMMIT verb's ERR BUSY reply is built on this.
  Status SubmitWithBackpressure(ObservationBatch batch,
                                int64_t* retry_after_ms);

  /// Blocks until everything submitted before this call is applied,
  /// relearned (pending shards), and published. A drain is an ordered
  /// event in the ingest stream, so replays that drain at the same
  /// points reproduce the same snapshots.
  Status Drain();

  /// Queues a checkpoint behind everything already submitted and blocks
  /// until the driver has written it: per-shard snapshots of the store
  /// + session state, then the manifest (the atomic commit), then
  /// truncation of the WAL segments the snapshots made obsolete.
  /// FailedPrecondition when durability is disabled or the service is
  /// stopped.
  Status Checkpoint();

  /// Graceful shutdown: no further submissions, remaining queue applied,
  /// pending shards relearned + published, driver joined. Idempotent.
  void Stop();

  // --- Query side (wait-free, any thread) ------------------------------

  /// Current MAP estimate for `object` (kNoValue when unknown/invalid).
  ValueId Query(ObjectId object) const;

  /// Top posterior probability behind Query (0 when unknown).
  double QueryConfidence(ObjectId object) const;

  /// Copies `object`'s posterior out of the owning shard's snapshot;
  /// false when the object has none yet.
  bool QueryPosterior(ObjectId object, std::vector<ValueId>* values,
                      std::vector<double>* probs) const;

  /// The owning shard's current snapshot for `object` (for callers that
  /// read several fields consistently); counts as one query.
  FusionSnapshotPtr SnapshotFor(ObjectId object) const;

  /// Current snapshot of shard `shard` (null on out-of-range index).
  FusionSnapshotPtr ShardSnapshot(int32_t shard) const;

  /// Current snapshots of every shard, indexed by shard id.
  std::vector<FusionSnapshotPtr> AllSnapshots() const;

  /// Per-object MAP estimates assembled from every shard's current
  /// snapshot (kNoValue where unknown) — the service-wide view used for
  /// accuracy evaluation.
  std::vector<ValueId> MergedPredictions() const;

  /// Wall-clock nanoseconds the oldest unabsorbed batch of `shard` has
  /// been waiting for a relearn, measured from the moment the batch was
  /// *accepted* by Submit — so queueing delay behind a slow relearn
  /// cycle counts, exactly like a client's view of snapshot staleness.
  /// 0 when nothing is pending or the shard index is out of range.
  /// Wait-free — one relaxed atomic load — so load generators can
  /// sample snapshot staleness from reader threads.
  int64_t ShardPendingAgeNanos(int32_t shard) const;

  // --- Introspection ----------------------------------------------------

  const ShardRouter& router() const { return router_; }
  int32_t num_shards() const { return router_.num_shards(); }
  int32_t num_sources() const { return num_sources_; }
  int32_t num_objects() const { return num_objects_; }
  int32_t num_values() const { return num_values_; }

  /// Operational counters (consistent copy; cheap).
  FusionServiceStats stats() const;

  /// Per-shard session counters as of the last completed driver step.
  std::vector<FusionSession::Stats> SessionStats() const;

  /// Scheduler + admission-control state for the SCHED verb: config,
  /// queue depth, relearn backlog, shed count, and the per-shard
  /// priorities of the most recent decision cycle (all zero under the
  /// flat policy).
  SchedulerInspection SchedStats() const;

  /// The recorded relearn schedule: every (batch index, shard) relearn
  /// the driver executed, in execution order. Empty unless
  /// SchedulerOptions::record_schedule is set. Feeding this to
  /// OfflineReplayWithSchedule over the same batches reproduces this
  /// service's snapshots bit for bit — the determinism re-assertion for
  /// runs whose decisions were shaped by live query traffic.
  std::vector<RelearnEvent> RelearnSchedule() const;

  /// Refreshes the registry gauges that are cheaper to compute on
  /// demand than to maintain on the hot path (queue depth, snapshot
  /// age/version, uptime, query count). The METRICS verb calls this
  /// right before rendering; no-op when observability is off.
  void UpdateObsGauges() const;

  /// The HEALTH verb's answer: "OK" when no SLO rule is latched (or no
  /// rule is configured / observability is off), otherwise
  /// "DEGRADED <rule>[,<rule>...]". Evaluates the watchdog against live
  /// inputs, so a breach shows up here even between driver sampling
  /// ticks; transitions it causes emit events exactly like the tick's.
  std::string Health() const;

 private:
  /// One queue entry: a batch, a flush marker Drain waits on, or a
  /// checkpoint request.
  struct Command {
    ObservationBatch batch;
    /// NowNanos() at the accepting Submit — the staleness clock's
    /// anchor for this batch (see ShardPendingAgeNanos).
    int64_t arrival_ns = 0;
    bool flush = false;
    /// Fulfilled by the driver once the flush (and everything queued
    /// before it) is applied and published.
    std::shared_ptr<std::promise<void>> ack;
    bool checkpoint = false;
    /// Fulfilled with the checkpoint's outcome.
    std::shared_ptr<std::promise<Status>> checkpoint_ack;
  };

  /// Per-shard mutable state, owned by the driver.
  struct Shard {
    std::unique_ptr<FusionSession> session;
    /// Batches ingested but not yet absorbed by a relearn. Matches the
    /// session's own pending_batches counter: truth-only ingests stay
    /// pending until the shard has observations to fit against.
    int32_t pending = 0;
    /// Set when `pending` went 0 -> 1; drives the staleness budget.
    Stopwatch oldest_pending;
    /// Store fingerprint of the last published snapshot, so evidence
    /// updates that cannot relearn yet (truth-only shards) publish
    /// exactly once per change.
    uint64_t last_published_fingerprint = 0;
    /// Registry-owned per-shard stage timers
    /// (slimfast_serve_stage_seconds{stage=...,shard=...}); registered
    /// at Create, recorded only while obs::Enabled().
    obs::LatencyHistogram* ingest_hist = nullptr;
    obs::LatencyHistogram* relearn_hist = nullptr;
    obs::LatencyHistogram* publish_hist = nullptr;
  };

  FusionService(FusionServiceOptions options, int32_t num_sources,
                int32_t num_objects, int32_t num_values);

  void DriverLoop();
  /// Restores checkpoint + WAL tail from the durability directory and
  /// opens the WAL writer. Runs on the Create thread, before the driver
  /// starts.
  Status RecoverFromDir(const FeatureSpace& features);
  /// Writes one checkpoint (driver thread only; see Checkpoint()).
  Status WriteCheckpoint();
  /// Applies one batch to its shards (parallel fan-out). `arrival_ns`
  /// is the batch's Submit-time timestamp (0 = "now", used by recovery
  /// replay); it anchors the shard staleness clock so queueing delay is
  /// part of the reported snapshot staleness.
  void ApplyBatch(const ObservationBatch& batch, int64_t arrival_ns = 0);
  /// Relearns + publishes every shard with pending data (parallel
  /// fan-out); `reason` feeds error messages. This is the flush path
  /// (drain, stop, staleness, recovery) — it ignores the scheduler's
  /// budgets but keeps its bookkeeping consistent via NoteFlush.
  void RelearnPending(const char* reason);
  /// Relearns + publishes exactly the shards in `order`, draining them
  /// in that order: under a serial executor the first entry's refreshed
  /// snapshot is live before the second entry's relearn starts, which
  /// is how a scheduler cycle gets the hottest shard fresh first. (With
  /// a parallel executor the entries fan out in task-creation order.)
  void RelearnShards(const std::vector<int32_t>& order, const char* reason);
  /// One scheduler decision cycle: sample per-shard traffic, rank, and
  /// relearn the selected shards under the configured budgets.
  void ScheduledRelearn();
  /// Count trigger dispatch: scheduler decision when enabled, flat
  /// RelearnPending otherwise. Shared by the driver loop and recovery.
  void CountTriggerRelearn(const char* reason);
  /// True when the staleness budget forces a relearn now (always false
  /// with the budget disabled — the driver may still poll on a timer
  /// for the flight recorder's sampling tick).
  bool StalenessExceeded() const;
  /// The driver's ~1 Hz flight-recorder tick: records the serve
  /// time-series and evaluates the watchdog. Rate-limited internally;
  /// no-op when observability is off. Driver thread only.
  void MaybeRecordSample();
  /// Gathers live SLO inputs, evaluates the watchdog, and turns any
  /// rule transitions into events + slo_breached gauge flips. Callers
  /// must check watchdog_/active()/obs::Enabled() first.
  obs::SloVerdict EvaluateSlo() const;
  /// Backoff hint for shed producers: the observed relearn-cycle time
  /// scaled by the current queue + backlog pressure, clamped to
  /// [1ms, 30s].
  int64_t RetryHintMs() const;
  /// Feeds the per-shard traffic counter behind Query* (no-op under the
  /// flat policy).
  void RecordShardTraffic(int32_t shard) const;
  void PublishInitialSnapshots();
  void UpdateSessionStatsLocked();

  FusionServiceOptions options_;
  int32_t num_sources_;
  int32_t num_objects_;
  int32_t num_values_;
  ShardRouter router_;

  std::vector<Shard> shards_;          // driver-owned after Create
  std::vector<std::unique_ptr<SnapshotSlot>> slots_;  // shared with readers
  Executor shard_exec_;

  BoundedMpscQueue<Command> queue_;
  std::thread driver_;

  /// Non-null iff durability is enabled. Owned by the driver after
  /// Create (the recovery path touches it before the driver starts).
  std::unique_ptr<WalWriter> wal_;
  /// Batches applied over the service's lifetime, including batches
  /// replayed during recovery — by construction equal to the WAL
  /// sequence of the last applied batch. Written only by the driver
  /// (and the Create-thread recovery path before the driver starts);
  /// atomic so stats()/UpdateObsGauges can read it from any thread.
  std::atomic<int64_t> applied_batches_{0};
  /// obs::Clock::NowNanos() at construction; feeds
  /// FusionServiceStats::uptime_seconds (through the same clock every
  /// other serve timestamp reads, so tests can pin it).
  int64_t created_ns_ = 0;
  /// Set during RecoverFromDir (before the driver starts, so plain
  /// bool): a checkpoint was restored and/or WAL records were replayed.
  bool recovered_ = false;
  /// steady_clock nanos of the most recent snapshot publication (any
  /// shard); 0 before the first. Feeds the snapshot-age gauge.
  mutable std::atomic<int64_t> last_publish_ns_{0};

  /// Non-null iff the traffic-aware scheduler is enabled. Owned by the
  /// driver after Create (recovery touches it before the driver starts).
  std::unique_ptr<RelearnScheduler> scheduler_;
  /// Per-shard query counters feeding the scheduler's traffic signal;
  /// allocated only when the scheduler is enabled. Sharded so the
  /// query path stays wait-free and contention-free.
  std::unique_ptr<obs::ShardedCounter[]> traffic_;
  /// Driver-side baseline of `traffic_` at the previous decision cycle,
  /// so each cycle sees the traffic delta, not the lifetime count.
  std::vector<int64_t> last_traffic_;
  /// Sum of per-shard pending batches, maintained by the driver after
  /// every apply/relearn step; read by admission control and SCHED.
  std::atomic<int64_t> relearn_backlog_{0};
  /// EWMA of the relearn-cycle wall time, feeding the ERR BUSY retry
  /// hint (0 until the first relearn).
  std::atomic<int64_t> ewma_cycle_ns_{0};
  /// steady_clock nanos when each shard's pending count went 0 -> 1
  /// (0 = nothing pending): the wait-free per-shard staleness signal
  /// behind ShardPendingAgeNanos.
  std::unique_ptr<std::atomic<int64_t>[]> pending_since_ns_;
  /// Queue depth at which admission control starts shedding, in batches
  /// (0 = queue watermark disabled). Precomputed from
  /// scheduler.shed_queue_watermark at Create.
  size_t shed_queue_batches_ = 0;

  /// The SLO watchdog (always constructed; inert unless some ceiling in
  /// options_.slo is set). Internally synchronized — evaluated from the
  /// driver tick and from HEALTH concurrently.
  std::unique_ptr<obs::SloWatchdog> watchdog_;
  /// obs::Clock nanos of the driver loop's most recent completed
  /// iteration — the heartbeat behind the relearn_stall rule.
  std::atomic<int64_t> last_tick_ns_{0};
  /// Clock nanos of the last flight-recorder sample; driver-only, so
  /// plain. 0 = never sampled.
  int64_t last_sample_ns_ = 0;
  /// True while admission control is inside a shed burst; flips emit
  /// the burst-entered/exited events exactly once per burst.
  mutable std::atomic<bool> shed_burst_{false};

  mutable std::mutex state_mu_;
  FusionServiceStats stats_;                       // guarded by state_mu_
  std::vector<FusionSession::Stats> session_stats_;  // guarded by state_mu_
  /// Copy of the scheduler's per-shard state as of the last decision
  /// cycle, exported to SchedStats(). Guarded by state_mu_.
  std::vector<ShardSchedState> sched_state_;
  int64_t sched_cycles_ = 0;  // guarded by state_mu_
  /// The recorded relearn schedule (record_schedule only). Guarded by
  /// state_mu_.
  std::vector<RelearnEvent> schedule_log_;

  /// Serializes driver join: every path that needs shutdown to have
  /// completed (Stop, Drain-after-stop, the destructor) joins under
  /// this mutex, so a loser of a concurrent Stop race still blocks
  /// until the driver is gone instead of returning early.
  std::mutex stop_mu_;

  /// Query counter: sharded so concurrent readers do not contend on
  /// one cache line (the query path must stay wait-free). Always on —
  /// it backs stats().queries, not just METRICS.
  mutable obs::ShardedCounter queries_;
};

/// The determinism oracle for the service: replays `batches`, in order,
/// through one *offline* FusionSession per shard — same router, same
/// relearn schedule, one final flush at the end (exactly what
/// Submit… + Drain + Stop produces) — and returns the final per-shard
/// snapshots. `FusionService` must match these bit for bit; with
/// `options.num_shards == 1` the result is the plain single-session
/// offline run of the whole stream. With `options.scheduler.enabled`
/// the oracle runs the same RelearnScheduler with a zero traffic
/// signal, which is exactly what a live scheduler-driven service that
/// served no queries computes (a run *with* queries is verified via its
/// recorded schedule — see OfflineReplayWithSchedule). The staleness
/// budget is ignored here (its wall-clock trigger is the documented
/// exception to the bitwise contract).
Result<std::vector<FusionSnapshotPtr>> OfflineShardedReplay(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    const FusionServiceOptions& options,
    const std::vector<ObservationBatch>& batches,
    FeatureSpace features = FeatureSpace());

/// Replays `batches` through offline per-shard sessions, executing a
/// relearn for shard `e.shard` right after the `e.batch_index`-th batch
/// for every event `e` of `schedule` (in log order), with no other
/// relearn triggers. Feeding a live run's RelearnSchedule() back in
/// reproduces that run's final snapshots bit for bit even when the
/// live decisions were shaped by query traffic or wall-clock staleness
/// sweeps — the schedule, once recorded, is a pure input.
Result<std::vector<FusionSnapshotPtr>> OfflineReplayWithSchedule(
    int32_t num_sources, int32_t num_objects, int32_t num_values,
    const FusionServiceOptions& options,
    const std::vector<ObservationBatch>& batches,
    const std::vector<RelearnEvent>& schedule,
    FeatureSpace features = FeatureSpace());

}  // namespace slimfast

#endif  // SLIMFAST_SERVE_FUSION_SERVICE_H_
