#ifndef SLIMFAST_SERVE_DURABILITY_H_
#define SLIMFAST_SERVE_DURABILITY_H_

#include <cstdint>
#include <string>

#include "core/fusion_session.h"
#include "data/observation_store.h"
#include "util/result.h"

namespace slimfast {

/// On-disk layout of a FusionService checkpoint, colocated with the WAL
/// in the service's durability directory:
///
///   wal-<first_sequence>.seg      the observation WAL segments
///   shard-<s>-<applied>.snap      per-shard store + session state
///   MANIFEST                      applied-batch count + topology
///
/// A checkpoint writes the shard snapshots first (to names keyed by the
/// applied-batch count, so they never clobber the files the current
/// manifest references), then atomically replaces the MANIFEST — the
/// commit point — and only then removes stale snapshots and obsolete WAL
/// segments. A crash anywhere in that sequence leaves a directory that
/// recovers to the same state as before or after the checkpoint.

/// The commit record of a checkpoint. `applied_batches` equals the WAL
/// sequence of the last batch the snapshots cover; recovery replays the
/// WAL strictly after it.
struct CheckpointManifest {
  /// WAL sequence of the last batch the shard snapshots cover; recovery
  /// replays the WAL strictly after it.
  uint64_t applied_batches = 0;
  /// Shard count the snapshots were written under — recovery refuses a
  /// mismatch (resharding would silently reroute objects).
  int32_t num_shards = 0;
  /// Id-universe dimensions, validated against the recovering service.
  int32_t num_sources = 0;
  /// See num_sources.
  int32_t num_objects = 0;
  /// See num_sources.
  int32_t num_values = 0;
};

/// One shard's checkpointed content.
struct ShardCheckpoint {
  ObservationStore store;
  FusionSession::State state;
};

/// Path of shard `shard`'s snapshot for a checkpoint at
/// `applied_batches`.
std::string ShardSnapshotPath(const std::string& dir, int32_t shard,
                              uint64_t applied_batches);

/// Atomically writes one shard's store + session state to `path`.
Status WriteShardSnapshot(const std::string& path,
                          const ObservationStore& store,
                          const FusionSession::State& state);

/// Reads a shard snapshot back; the store load re-verifies the content
/// fingerprint end to end.
Result<ShardCheckpoint> ReadShardSnapshot(const std::string& path);

/// Atomically writes the manifest (the checkpoint commit point).
Status WriteManifest(const std::string& dir,
                     const CheckpointManifest& manifest);

/// Reads the manifest; NotFound when the directory has no checkpoint.
Result<CheckpointManifest> ReadManifest(const std::string& dir);

/// Removes shard snapshots whose applied-batch tag differs from `keep`
/// (post-commit cleanup of superseded checkpoints).
Status RemoveStaleShardSnapshots(const std::string& dir, uint64_t keep);

}  // namespace slimfast

#endif  // SLIMFAST_SERVE_DURABILITY_H_
