#ifndef SLIMFAST_SERVE_SNAPSHOT_SLOT_H_
#define SLIMFAST_SERVE_SNAPSHOT_SLOT_H_

#include <atomic>
#include <memory>
#include <utility>

#include "core/snapshot.h"

// The slot prefers C++20 `std::atomic<std::shared_ptr>` (a lock-bit
// spinlock on the control word: readers never touch a blocking mutex).
// Under ThreadSanitizer we substitute the semantically identical C++11
// atomic free functions: libstdc++'s `_Sp_atomic` guards its pointer
// with a lock *bit* whose acquire/release protocol TSan cannot see, so
// every Load/Store pair reports a false-positive race (reproduced
// minimally in-tree; the free functions synchronize through pthread
// mutexes TSan understands). Both paths give acquire/release ordering
// on the pointer plus thread-safe reference counting.
#if defined(__SANITIZE_THREAD__)
#define SLIMFAST_SNAPSHOT_SLOT_USE_FALLBACK 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SLIMFAST_SNAPSHOT_SLOT_USE_FALLBACK 1
#endif
#endif
#if !defined(SLIMFAST_SNAPSHOT_SLOT_USE_FALLBACK) && \
    !defined(__cpp_lib_atomic_shared_ptr)
#define SLIMFAST_SNAPSHOT_SLOT_USE_FALLBACK 1
#endif

namespace slimfast {

/// The publication point between one shard's ingest pipeline and every
/// query thread: an atomically swappable `shared_ptr` to the shard's
/// current immutable `FusionSnapshot`.
///
/// Readers call Load() and get a consistent snapshot they own for as
/// long as they hold the pointer; the publisher calls Store() with a
/// freshly exported snapshot after each relearn. Neither side ever
/// holds a lock across real work: the only shared state is the one
/// atomic pointer swap, so a query can never block on (or be blocked
/// by) ingest, delta compilation, or relearning — the snapshot swap is
/// the entire synchronization surface.
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  /// Current snapshot (never null once the owner published an initial
  /// snapshot; null only on a freshly constructed slot).
  FusionSnapshotPtr Load() const {
#if defined(SLIMFAST_SNAPSHOT_SLOT_USE_FALLBACK)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    return std::atomic_load_explicit(&slot_, std::memory_order_acquire);
#pragma GCC diagnostic pop
#else
    return slot_.load(std::memory_order_acquire);
#endif
  }

  /// Publishes `snapshot`, releasing the previous one (readers still
  /// holding it keep a valid view until they drop their pointer).
  void Store(FusionSnapshotPtr snapshot) {
#if defined(SLIMFAST_SNAPSHOT_SLOT_USE_FALLBACK)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    std::atomic_store_explicit(&slot_, std::move(snapshot),
                               std::memory_order_release);
#pragma GCC diagnostic pop
#else
    slot_.store(std::move(snapshot), std::memory_order_release);
#endif
  }

 private:
#if defined(SLIMFAST_SNAPSHOT_SLOT_USE_FALLBACK)
  FusionSnapshotPtr slot_;
#else
  std::atomic<FusionSnapshotPtr> slot_;
#endif
};

}  // namespace slimfast

#endif  // SLIMFAST_SERVE_SNAPSHOT_SLOT_H_
