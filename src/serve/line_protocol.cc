#include "serve/line_protocol.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/timeseries.h"
#include "util/hash.h"

namespace slimfast {

namespace {

/// Parses a non-negative 32-bit id; false on garbage or trailing junk.
bool ParseId(const std::string& token, int32_t* out) {
  if (token.empty()) return false;
  int64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > INT32_MAX) return false;
  }
  *out = static_cast<int32_t>(value);
  return true;
}

std::string FormatDouble(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", v);
  return buffer;
}

/// Per-verb latency histogram, cached per known verb so the hot path
/// skips the registry mutex. Unknown commands share one "OTHER" series
/// so a misbehaving client cannot grow the registry without bound.
obs::LatencyHistogram* VerbHistogram(const std::string& verb) {
  static const struct {
    const char* verb;
    obs::LatencyHistogram* hist;
  } kVerbs[] = {
      {"OBS", obs::GetHistogram(
                  "slimfast_serve_verb_latency_seconds{verb=\"OBS\"}")},
      {"TRUTH", obs::GetHistogram(
                    "slimfast_serve_verb_latency_seconds{verb=\"TRUTH\"}")},
      {"COMMIT", obs::GetHistogram(
                     "slimfast_serve_verb_latency_seconds{verb=\"COMMIT\"}")},
      {"QUERY", obs::GetHistogram(
                    "slimfast_serve_verb_latency_seconds{verb=\"QUERY\"}")},
      {"POSTERIOR",
       obs::GetHistogram(
           "slimfast_serve_verb_latency_seconds{verb=\"POSTERIOR\"}")},
      {"STATS", obs::GetHistogram(
                    "slimfast_serve_verb_latency_seconds{verb=\"STATS\"}")},
      {"METRICS",
       obs::GetHistogram(
           "slimfast_serve_verb_latency_seconds{verb=\"METRICS\"}")},
      {"CHECKPOINT",
       obs::GetHistogram(
           "slimfast_serve_verb_latency_seconds{verb=\"CHECKPOINT\"}")},
      {"SCHED", obs::GetHistogram(
                    "slimfast_serve_verb_latency_seconds{verb=\"SCHED\"}")},
      {"HEALTH", obs::GetHistogram(
                     "slimfast_serve_verb_latency_seconds{verb=\"HEALTH\"}")},
      {"HISTORY",
       obs::GetHistogram(
           "slimfast_serve_verb_latency_seconds{verb=\"HISTORY\"}")},
      {"EVENTS", obs::GetHistogram(
                     "slimfast_serve_verb_latency_seconds{verb=\"EVENTS\"}")},
      {"SLOW", obs::GetHistogram(
                   "slimfast_serve_verb_latency_seconds{verb=\"SLOW\"}")},
      {"DRAIN", obs::GetHistogram(
                    "slimfast_serve_verb_latency_seconds{verb=\"DRAIN\"}")},
      {"QUIT", obs::GetHistogram(
                   "slimfast_serve_verb_latency_seconds{verb=\"QUIT\"}")},
      {"OTHER", obs::GetHistogram(
                    "slimfast_serve_verb_latency_seconds{verb=\"OTHER\"}")},
  };
  for (const auto& entry : kVerbs) {
    if (verb == entry.verb) return entry.hist;
  }
  return kVerbs[std::size(kVerbs) - 1].hist;
}

}  // namespace

std::string LineProtocol::HandleLine(const std::string& line, bool* quit) {
  if (!obs::Enabled()) return HandleLineInner(line, quit);
  const auto start = std::chrono::steady_clock::now();
  std::string reply = HandleLineInner(line, quit);
  const size_t verb_end = line.find(' ');
  const std::string verb = line.substr(0, verb_end);
  const int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  VerbHistogram(verb)->Record(elapsed_ns);
  if (verb == "QUERY" || verb == "POSTERIOR") {
    // Slow-query exemplars: the adaptive threshold tracks the EWMA of
    // every query, so only genuine tail outliers are captured.
    obs::SlowLog::Global().Offer(verb, elapsed_ns, /*shard=*/-1, line);
  }
  return reply;
}

std::string LineProtocol::HandleLineInner(const std::string& line,
                                          bool* quit) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  std::vector<std::string> args;
  for (std::string token; in >> token;) args.push_back(token);

  if (command.empty()) return "ERR empty command";

  if (command == "OBS") {
    int32_t object = 0;
    int32_t source = 0;
    int32_t value = 0;
    if (args.size() != 3 || !ParseId(args[0], &object) ||
        !ParseId(args[1], &source) || !ParseId(args[2], &value)) {
      return "ERR usage: OBS <object> <source> <value>";
    }
    if (object >= service_->num_objects() ||
        source >= service_->num_sources() ||
        value >= service_->num_values()) {
      return "ERR id outside the service universe";
    }
    pending_.observations.push_back(Observation{object, source, value});
    return "OK";
  }

  if (command == "TRUTH") {
    int32_t object = 0;
    int32_t value = 0;
    if (args.size() != 2 || !ParseId(args[0], &object) ||
        !ParseId(args[1], &value)) {
      return "ERR usage: TRUTH <object> <value>";
    }
    if (object >= service_->num_objects() ||
        value >= service_->num_values()) {
      return "ERR id outside the service universe";
    }
    pending_.truths.push_back(TruthLabel{object, value});
    return "OK";
  }

  if (command == "COMMIT") {
    if (!args.empty()) return "ERR usage: COMMIT";
    const int64_t observations =
        static_cast<int64_t>(pending_.observations.size());
    const int64_t truths = static_cast<int64_t>(pending_.truths.size());
    if (observations + truths > 0) {
      // Submit a copy: Submit consumes its batch even on failure (the
      // queue drops pushes after close), so handing over pending_
      // itself would silently lose the client's buffer on a
      // backpressure/shutdown ERR with no way to retry.
      int64_t retry_after_ms = 0;
      Status status =
          service_->SubmitWithBackpressure(pending_, &retry_after_ms);
      if (status.IsOutOfRange()) {
        // Admission control shed the batch: tell the client how long to
        // back off instead of blocking it.
        return "ERR BUSY retry_after_ms=" +
               std::to_string(retry_after_ms) + " (" +
               std::to_string(observations) + " observations + " +
               std::to_string(truths) +
               " truths kept buffered for retry)";
      }
      if (!status.ok()) {
        return "ERR " + status.ToString() + " (" +
               std::to_string(observations) + " observations + " +
               std::to_string(truths) +
               " truths kept buffered for retry)";
      }
      pending_ = ObservationBatch();
    }
    return "OK " + std::to_string(observations) + " " +
           std::to_string(truths);
  }

  if (command == "QUERY") {
    int32_t object = 0;
    if (args.size() != 1 || !ParseId(args[0], &object)) {
      return "ERR usage: QUERY <object>";
    }
    // One snapshot for both fields: separate Query/QueryConfidence
    // calls could straddle a publish and pair a prediction with another
    // model's confidence.
    const FusionSnapshotPtr snapshot = service_->SnapshotFor(object);
    const ValueId value =
        snapshot == nullptr ? kNoValue : snapshot->Prediction(object);
    if (value == kNoValue) return "NONE";
    return "VALUE " + std::to_string(value) + " " +
           FormatDouble(snapshot->Confidence(object));
  }

  if (command == "POSTERIOR") {
    int32_t object = 0;
    if (args.size() != 1 || !ParseId(args[0], &object)) {
      return "ERR usage: POSTERIOR <object>";
    }
    std::vector<ValueId> values;
    std::vector<double> probs;
    if (!service_->QueryPosterior(object, &values, &probs)) return "NONE";
    std::string reply = "POSTERIOR";
    for (size_t i = 0; i < values.size(); ++i) {
      reply += " " + std::to_string(values[i]) + ":" +
               FormatDouble(probs[i]);
    }
    return reply;
  }

  if (command == "METRICS") {
    if (!args.empty()) return "ERR usage: METRICS";
    if (!obs::Enabled()) {
      return "# observability disabled (SLIMFAST_OBS=0)\n# EOF";
    }
    service_->UpdateObsGauges();
    std::string text = obs::Registry::Global().RenderPrometheus();
    // The transport appends the terminating newline; the "# EOF" line
    // is how clients find the end of this multi-line reply.
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }

  if (command == "HEALTH") {
    if (!args.empty()) return "ERR usage: HEALTH";
    return service_->Health();
  }

  if (command == "EVENTS") {
    int32_t n = 0;
    if (args.size() > 1 || (args.size() == 1 && !ParseId(args[0], &n))) {
      return "ERR usage: EVENTS [n]";
    }
    if (!obs::Enabled()) {
      return "# observability disabled (SLIMFAST_OBS=0)\n# EOF";
    }
    obs::EventLog& log = obs::EventLog::Global();
    const std::vector<obs::Event> events = log.Recent(n);
    std::string reply =
        "EVENTS n=" + std::to_string(events.size()) +
        " dropped=" + std::to_string(log.dropped());
    for (const obs::Event& event : events) {
      reply += "\n" + FormatDouble(static_cast<double>(event.ts_ns) * 1e-9) +
               " " + obs::EventSeverityName(event.severity) + " " +
               event.stage + " shard=" + std::to_string(event.shard) + " " +
               event.message;
    }
    return reply + "\n# EOF";
  }

  if (command == "HISTORY") {
    if (args.size() > 2) return "ERR usage: HISTORY [series] [window_s]";
    if (!obs::Enabled()) {
      return "# observability disabled (SLIMFAST_OBS=0)\n# EOF";
    }
    obs::TimeSeriesStore& store = obs::TimeSeriesStore::Global();
    if (args.empty()) {
      const std::vector<std::string> names = store.Names();
      std::string reply = "HISTORY series=" + std::to_string(names.size());
      for (const std::string& name : names) reply += "\n" + name;
      return reply + "\n# EOF";
    }
    obs::TimeSeries* series = store.Find(args[0]);
    if (series == nullptr) {
      return "ERR unknown series '" + args[0] +
             "' (bare HISTORY lists them)";
    }
    int32_t window_s = 0;
    if (args.size() == 2 && !ParseId(args[1], &window_s)) {
      return "ERR usage: HISTORY [series] [window_s]";
    }
    // Pick the finest resolution whose ring spans the window (the
    // coarsest one when nothing does); no window = the finest ring.
    int32_t r = 0;
    int32_t max_samples = 0;
    if (window_s > 0) {
      const int64_t window_ns = static_cast<int64_t>(window_s) * 1'000'000'000;
      r = series->num_resolutions() - 1;
      for (int32_t i = 0; i < series->num_resolutions(); ++i) {
        if (series->bucket_nanos(i) * series->capacity(i) >= window_ns) {
          r = i;
          break;
        }
      }
      max_samples = static_cast<int32_t>(
          (window_ns + series->bucket_nanos(r) - 1) /
          series->bucket_nanos(r));
    }
    const std::vector<obs::SeriesSample> samples =
        series->Samples(r, max_samples);
    const bool counter = series->kind() == obs::SeriesKind::kCounter;
    const std::vector<double> rates =
        counter ? series->Rates(r, max_samples) : std::vector<double>();
    std::string reply =
        "HISTORY " + args[0] + " kind=" + (counter ? "counter" : "gauge") +
        " res=" + std::to_string(series->bucket_nanos(r) / 1'000'000'000) +
        "s samples=" + std::to_string(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      reply += "\n" +
               FormatDouble(static_cast<double>(samples[i].bucket_start_ns) *
                            1e-9) +
               " " + FormatDouble(samples[i].value);
      if (counter) {
        // rates[i-1] covers the step into sample i; the first bucket has
        // no predecessor to difference against.
        reply += i == 0 ? " -" : " " + FormatDouble(rates[i - 1]);
      }
    }
    return reply + "\n# EOF";
  }

  if (command == "SLOW") {
    int32_t n = 0;
    if (args.size() > 1 || (args.size() == 1 && !ParseId(args[0], &n))) {
      return "ERR usage: SLOW [n]";
    }
    if (!obs::Enabled()) {
      return "# observability disabled (SLIMFAST_OBS=0)\n# EOF";
    }
    obs::SlowLog& log = obs::SlowLog::Global();
    const std::vector<obs::SlowExemplar> exemplars = log.Recent(n);
    std::string reply =
        "SLOW n=" + std::to_string(exemplars.size()) +
        " threshold_ns=" + std::to_string(log.ThresholdNanos());
    for (const obs::SlowExemplar& e : exemplars) {
      reply += "\n" + FormatDouble(static_cast<double>(e.ts_ns) * 1e-9) +
               " " + e.kind + " " + std::to_string(e.duration_ns) +
               "ns shard=" + std::to_string(e.shard) + " " + e.detail;
    }
    return reply + "\n# EOF";
  }

  if (command == "STATS") {
    if (!args.empty()) return "ERR usage: STATS";
    const FusionServiceStats stats = service_->stats();
    // 64-bit accumulator: the per-shard counters are session-lifetime
    // values and their sum must not wrap on long-lived services.
    int64_t pending = 0;
    double last_relearn_seconds = 0.0;
    for (const FusionSession::Stats& shard : service_->SessionStats()) {
      pending += shard.pending_batches;
      if (shard.last_relearn_seconds > last_relearn_seconds) {
        last_relearn_seconds = shard.last_relearn_seconds;
      }
    }
    // Order-sensitive fold of the published per-shard store
    // fingerprints: one hex token that two services can compare to
    // decide whether they have absorbed the same evidence (the
    // crash-recovery smoke test's oracle).
    uint64_t store_fingerprint = 0;
    for (const FusionSnapshotPtr& snapshot : service_->AllSnapshots()) {
      store_fingerprint = HashCombine(
          store_fingerprint,
          snapshot == nullptr ? 0 : snapshot->store_fingerprint);
    }
    char fingerprint_hex[24];
    std::snprintf(fingerprint_hex, sizeof(fingerprint_hex), "%016llx",
                  static_cast<unsigned long long>(store_fingerprint));
    return "STATS shards=" + std::to_string(service_->num_shards()) +
           " batches=" + std::to_string(stats.batches_processed) +
           " observations=" + std::to_string(stats.observations_ingested) +
           " truths=" + std::to_string(stats.truths_ingested) +
           " relearns=" + std::to_string(stats.relearns) +
           " publishes=" + std::to_string(stats.publishes) +
           " queries=" + std::to_string(stats.queries) +
           " failures=" + std::to_string(stats.ingest_failures) +
           " pending_batches=" + std::to_string(pending) +
           " store_fingerprint=" + fingerprint_hex +
           " last_relearn_s=" + FormatDouble(last_relearn_seconds) +
           " uptime_s=" + FormatDouble(stats.uptime_seconds) +
           " recovered=" + (stats.recovered ? "1" : "0") +
           " lifetime_batches=" + std::to_string(stats.lifetime_batches) +
           " lifetime_relearns=" + std::to_string(stats.lifetime_relearns) +
           " lifetime_observations=" +
           std::to_string(stats.lifetime_observations);
  }

  if (command == "SCHED") {
    if (!args.empty()) return "ERR usage: SCHED";
    const SchedulerInspection sched = service_->SchedStats();
    std::string reply = "SCHED mode=";
    reply += sched.enabled ? "sched" : "flat";
    reply += " warm_budget=" + std::to_string(sched.warm_budget);
    reply += " cold_budget=" + std::to_string(sched.cold_budget);
    reply += " max_defer=" + std::to_string(sched.max_deferred_cycles);
    reply += " cycles=" + std::to_string(sched.cycles);
    reply += " queue_depth=" + std::to_string(sched.queue_depth);
    reply += " queue_capacity=" + std::to_string(sched.queue_capacity);
    reply += " backlog=" + std::to_string(sched.backlog);
    reply += " sheds=" + std::to_string(sched.sheds);
    for (size_t s = 0; s < sched.shards.size(); ++s) {
      const ShardSchedState& shard = sched.shards[s];
      reply += " shard" + std::to_string(s) +
               "=prio:" + FormatDouble(shard.priority) +
               ",pending:" + std::to_string(shard.pending) +
               ",traffic:" + std::to_string(shard.traffic) +
               ",deferred:" + std::to_string(shard.deferred_cycles) +
               ",selections:" + std::to_string(shard.selections);
    }
    return reply;
  }

  if (command == "CHECKPOINT") {
    if (!args.empty()) return "ERR usage: CHECKPOINT";
    Status status = service_->Checkpoint();
    if (!status.ok()) return "ERR " + status.ToString();
    return "OK";
  }

  if (command == "DRAIN") {
    if (!args.empty()) return "ERR usage: DRAIN";
    Status status = service_->Drain();
    if (!status.ok()) return "ERR " + status.ToString();
    return "OK";
  }

  if (command == "QUIT") {
    if (quit != nullptr) *quit = true;
    return "BYE";
  }

  return "ERR unknown command '" + command +
         "' (OBS TRUTH COMMIT QUERY POSTERIOR STATS METRICS HEALTH "
         "HISTORY EVENTS SLOW SCHED CHECKPOINT DRAIN QUIT)";
}

}  // namespace slimfast
