#ifndef SLIMFAST_SERVE_LOADGEN_H_
#define SLIMFAST_SERVE_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "exec/options.h"
#include "serve/scheduler.h"
#include "util/result.h"

namespace slimfast {

/// Configuration of one load-generation run (see RunLoadgen).
struct LoadgenOptions {
  /// Shards of the FusionService under test.
  int32_t num_shards = 4;
  /// Ingest batches the dataset is replayed as.
  int32_t num_chunks = 24;
  /// Concurrent query threads hammering the service during ingest.
  int32_t reader_threads = 4;
  /// Minimum queries per reader: readers keep querying past the end of
  /// ingest until they reach it, so short ingests still produce a
  /// meaningful latency sample.
  int64_t min_queries_per_reader = 2000;
  /// Service relearn policy (every K batches).
  int32_t relearn_every_batches = 2;
  /// Seed for the shard sessions and the readers' object streams.
  uint64_t seed = 42;
  /// Cross-check the final service snapshots against OfflineShardedReplay
  /// (the sharded-replay determinism contract) after the run.
  bool verify = true;
  /// After the mixed run, measure the observability layer's query-path
  /// overhead: single-threaded calibration rounds alternating metrics
  /// off/on, gated at p99 (see LoadgenReport::overhead_gate_passed).
  bool measure_overhead = true;
  /// Queries per calibration round (overhead measurement).
  int64_t overhead_queries_per_round = 20000;
  /// Thread budget for the service's shard fan-out.
  ExecOptions exec;
};

/// Nearest-rank latency percentiles of a sample.
struct LatencySummary {
  /// Number of measurements summarized.
  int64_t count = 0;
  /// Median (nearest-rank), in the sample's unit.
  double p50 = 0.0;
  /// 95th percentile.
  double p95 = 0.0;
  /// 99th percentile.
  double p99 = 0.0;
  /// Largest sample.
  double max = 0.0;
};

/// Nearest-rank percentile summary of `*samples` (sorted in place; an
/// empty sample yields all zeros). Nearest-rank keeps every reported
/// number an actually observed latency.
LatencySummary SummarizeLatencies(std::vector<double>* samples);

/// What one loadgen run measured (see RunLoadgen).
struct LoadgenReport {
  /// Echo of the workload shape.
  int32_t num_shards = 0;
  /// See num_shards.
  int32_t num_chunks = 0;
  /// See num_shards.
  int32_t reader_threads = 0;
  /// Observations replayed into the service.
  int64_t observations = 0;
  /// Truth labels replayed into the service.
  int64_t truths = 0;
  /// Wall-clock of submit-first-batch → drain-complete.
  double ingest_wall_seconds = 0.0;
  /// Wall-clock of the whole mixed run (readers start → readers joined).
  double run_wall_seconds = 0.0;
  /// Queries issued across all readers (exact count).
  int64_t total_queries = 0;
  /// total_queries / run_wall_seconds.
  double qps = 0.0;
  /// Per-query latency percentiles, in seconds, over *every* query of
  /// the run: each reader records into a bounded log-scale histogram
  /// (obs::LatencyHistogram — fixed memory at any QPS, exact
  /// nearest-rank bucket percentiles) and the per-reader histograms are
  /// merged deterministically (bucket-wise sums commute, so reader join
  /// order cannot change the reported numbers).
  LatencySummary query_latency;
  /// Queries that returned an out-of-universe value (must be 0).
  int64_t invalid_reads = 0;
  /// Fraction of truth-labeled observed objects the final merged
  /// predictions got right (an end-to-end sanity metric, not a held-out
  /// evaluation — loadgen replays every truth label).
  double accuracy = 0.0;
  /// Relearns / publishes the service performed.
  int64_t relearns = 0;
  /// See relearns.
  int64_t publishes = 0;
  /// True when the final per-shard snapshots matched the offline replay
  /// bit for bit (always true when options.verify was off — check
  /// `verify_ran`).
  bool verified = false;
  /// Whether the offline cross-check ran.
  bool verify_ran = false;

  // --- Observability overhead gate (when options.measure_overhead) ------

  /// Whether the overhead calibration ran.
  bool overhead_ran = false;
  /// Single-threaded query p99 (seconds) with instrumentation disabled:
  /// min over the alternating calibration rounds, exact sample sort
  /// (not histogram buckets, so quantization cannot eat the margin).
  double overhead_base_p99_seconds = 0.0;
  /// Same measurement with instrumentation enabled.
  double overhead_obs_p99_seconds = 0.0;
  /// True when the instrumented p99 stayed within 5% of baseline (with
  /// a 100ns absolute floor so timer noise at ~0.1us latencies cannot
  /// fail the gate spuriously).
  bool overhead_gate_passed = true;
};

/// Replays `dataset` through a FusionService as a mixed ingest/query
/// workload: one writer streams the dataset in `num_chunks` batches
/// (blocking Submit, final Drain) while `reader_threads` threads hammer
/// wait-free queries against random objects, timing every query. After
/// the run the final snapshots are (optionally) cross-checked against
/// the offline sharded replay — the determinism contract — and the
/// merged predictions are scored against the dataset truth.
Result<LoadgenReport> RunLoadgen(const Dataset& dataset,
                                 const LoadgenOptions& options);

/// Configuration of the skewed (Zipfian) scheduler comparison scenario
/// (see RunSkewedLoadgen).
struct SkewedLoadgenOptions {
  /// Shards of the services under test. More shards widen the gap
  /// between the flat policy (relearns all of them per trigger) and the
  /// scheduler (relearns a budget's worth).
  int32_t num_shards = 12;
  /// Ingest batches the dataset is replayed as (each one is a relearn
  /// trigger when relearn_every_batches == 1).
  int32_t num_chunks = 16;
  /// Concurrent Zipfian query threads. Their queries feed the
  /// scheduler's per-shard traffic counters.
  int32_t reader_threads = 2;
  /// Zipf exponent of the readers' object popularity (1.0–1.5 is the
  /// usual skew range; higher concentrates more mass on the hot shard).
  double zipf_exponent = 1.1;
  /// Relearn trigger period, in batches, for both phases.
  int32_t relearn_every_batches = 1;
  /// Pause between writer chunks, in milliseconds. The pacing gives the
  /// single-core readers guaranteed slices of the ingest window (their
  /// staleness samples cover it) and lets relearn cycles land between
  /// batches.
  int32_t writer_pause_ms = 5;
  /// After each chunk the writer additionally waits (bounded, ~1s) until
  /// the readers issued this many further queries, so a starved reader
  /// pool on a loaded box cannot leave a phase without staleness
  /// samples. 0 disables the wait.
  int64_t min_queries_per_chunk = 200;
  /// Seed for the shard sessions and the readers' Zipf streams.
  uint64_t seed = 42;
  /// Cross-check both phases against their offline oracles: the flat
  /// phase against OfflineShardedReplay, the scheduler phase against
  /// OfflineReplayWithSchedule over its recorded relearn schedule.
  bool verify = true;
  /// Scheduler phase policy. `enabled` and `record_schedule` are forced
  /// on by the runner; budgets/watermarks are taken as given.
  SchedulerOptions scheduler;
  /// Thread budget for the services' shard fan-out (equal for both
  /// phases — the comparison is at equal CPU).
  ExecOptions exec;
};

/// What one policy phase (flat or scheduler) of the skewed scenario
/// measured.
struct PolicyPhaseReport {
  /// Wall-clock of submit-first-chunk → drain-complete.
  double wall_seconds = 0.0;
  /// Queries issued across all readers during the ingest window.
  int64_t total_queries = 0;
  /// The subset of total_queries that routed to the hot shard.
  int64_t hot_queries = 0;
  /// Relearns the service performed.
  int64_t relearns = 0;
  /// Hot-shard snapshot staleness percentiles, in seconds: every reader
  /// query samples the age of the hot shard's oldest unabsorbed batch
  /// (0 when the shard is fully absorbed), so the percentiles describe
  /// how stale the hot shard's served snapshot was across the ingest
  /// window. Wall-clock and therefore load-dependent — informational
  /// color, not the gate (see hot_version_lag_mean).
  LatencySummary hot_staleness;
  /// Mean hot-shard *version lag* over the phase's executed relearn
  /// cycles, derived from the recorded relearn schedule: after each
  /// cycle, how many cycles have passed since the hot shard was last
  /// relearned (0 when the cycle included it). A pure function of the
  /// policy's decisions at its opportunity points — deterministic on
  /// any box at any load — which is why the scenario gate compares
  /// this, not the wall-clock staleness. The flat policy scores 0 by
  /// construction; a scheduler deferring the hot shard accumulates lag.
  double hot_version_lag_mean = 0.0;
  /// Largest per-cycle hot-shard version lag (same units as the mean).
  /// The scheduler's deferral bound caps this at max_deferred_cycles —
  /// the invariant the scenario gate checks.
  double hot_version_lag_max = 0.0;
  /// Whether the phase's offline cross-check ran / passed.
  bool verify_ran = false;
  /// See verify_ran.
  bool verified = false;
};

/// What RunSkewedLoadgen measured (see the per-field docs).
struct SkewedLoadgenReport {
  /// Shard receiving the largest share of the Zipfian query mass.
  int32_t hot_shard = 0;
  /// That shard's share of the query mass, in [0, 1].
  double hot_shard_mass = 0.0;
  /// The flat-policy phase (relearn everything every trigger).
  PolicyPhaseReport flat;
  /// The scheduler phase (traffic-aware budgeted relearns).
  PolicyPhaseReport sched;
  /// Batches shed by the deterministic admission-control exercise.
  int64_t admission_sheds = 0;
  /// The retry hint (ms) the last shed reply carried.
  int64_t shed_retry_hint_ms = 0;
  /// The scenario's headline gate, fully deterministic (invariants of
  /// the policies, independent of box load): the flat phase's hot
  /// version lag is 0, the scheduler phase's max hot version lag stayed
  /// within its deferral bound (max_deferred_cycles), and the scheduler
  /// performed strictly fewer relearns. All derived from the recorded
  /// relearn schedules.
  bool gate_passed = false;
};

/// The scheduler's proof-of-value scenario: replays `dataset` twice with
/// an identical chunk schedule, pacing, and thread budget — once under
/// the flat relearn policy, once under the traffic-aware scheduler —
/// while Zipfian readers concentrate query traffic on one hot shard and
/// sample that shard's snapshot staleness on every query. At equal CPU
/// the scheduler must keep the hot shard fresh for less work: the
/// report's `gate_passed` asserts flat hot version lag == 0, sched max
/// hot version lag within the deferral bound, and strictly fewer sched
/// relearns — all derived from the recorded relearn schedules, so the
/// gate cannot flake under load (wall-clock staleness percentiles are
/// reported as color). Both phases are
/// cross-checked against their offline replay oracles (the determinism
/// contract), and a final deterministic admission-control exercise
/// drives a COMMIT-path shed to prove the ERR BUSY backpressure path
/// end to end.
Result<SkewedLoadgenReport> RunSkewedLoadgen(
    const Dataset& dataset, const SkewedLoadgenOptions& options);

}  // namespace slimfast

#endif  // SLIMFAST_SERVE_LOADGEN_H_
