#include "serve/durability.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "storage/codec.h"
#include "storage/snapshot_io.h"

namespace slimfast {

namespace {

constexpr char kManifestName[] = "MANIFEST";

void AppendSessionState(const FusionSession::State& state,
                        std::string* out) {
  AppendArray(out, state.weights);
  AppendArray(out, state.predictions);
  AppendArray(out, state.source_accuracies);
  AppendArray(out, state.posterior_begin);
  AppendArray(out, state.posterior_values);
  AppendArray(out, state.posterior_probs);
  AppendArray(out, state.max_posterior);
  AppendI32(out, state.num_ingested_batches);
  AppendI32(out, state.num_relearns);
  AppendI32(out, state.pending_batches);
}

bool ReadSessionState(ByteReader* in, FusionSession::State* state) {
  return ReadArray(in, &state->weights) &&
         ReadArray(in, &state->predictions) &&
         ReadArray(in, &state->source_accuracies) &&
         ReadArray(in, &state->posterior_begin) &&
         ReadArray(in, &state->posterior_values) &&
         ReadArray(in, &state->posterior_probs) &&
         ReadArray(in, &state->max_posterior) &&
         in->ReadI32(&state->num_ingested_batches) &&
         in->ReadI32(&state->num_relearns) &&
         in->ReadI32(&state->pending_batches);
}

}  // namespace

std::string ShardSnapshotPath(const std::string& dir, int32_t shard,
                              uint64_t applied_batches) {
  char name[64];
  std::snprintf(name, sizeof(name), "shard-%d-%020llu.snap", shard,
                static_cast<unsigned long long>(applied_batches));
  return dir + "/" + name;
}

Status WriteShardSnapshot(const std::string& path,
                          const ObservationStore& store,
                          const FusionSession::State& state) {
  std::string payload;
  AppendStoreColumns(store, &payload);
  AppendSessionState(state, &payload);
  return WriteSnapshotFile(path, payload);
}

Result<ShardCheckpoint> ReadShardSnapshot(const std::string& path) {
  SLIMFAST_ASSIGN_OR_RETURN(std::string payload, ReadSnapshotFile(path));
  ByteReader in(payload);
  ShardCheckpoint checkpoint;
  SLIMFAST_ASSIGN_OR_RETURN(checkpoint.store, ReadStoreColumns(&in));
  if (!ReadSessionState(&in, &checkpoint.state) || in.remaining() != 0) {
    return Status::IOError("shard snapshot " + path +
                           " has malformed session state sections");
  }
  return checkpoint;
}

Status WriteManifest(const std::string& dir,
                     const CheckpointManifest& manifest) {
  std::string payload;
  AppendU64(&payload, manifest.applied_batches);
  AppendI32(&payload, manifest.num_shards);
  AppendI32(&payload, manifest.num_sources);
  AppendI32(&payload, manifest.num_objects);
  AppendI32(&payload, manifest.num_values);
  return WriteSnapshotFile(dir + "/" + kManifestName, payload);
}

Result<CheckpointManifest> ReadManifest(const std::string& dir) {
  SLIMFAST_ASSIGN_OR_RETURN(std::string payload,
                            ReadSnapshotFile(dir + "/" + kManifestName));
  ByteReader in(payload);
  CheckpointManifest manifest;
  if (!in.ReadU64(&manifest.applied_batches) ||
      !in.ReadI32(&manifest.num_shards) ||
      !in.ReadI32(&manifest.num_sources) ||
      !in.ReadI32(&manifest.num_objects) ||
      !in.ReadI32(&manifest.num_values) || in.remaining() != 0) {
    return Status::IOError("checkpoint manifest in " + dir +
                           " is malformed");
  }
  return manifest;
}

Status RemoveStaleShardSnapshots(const std::string& dir, uint64_t keep) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot list checkpoint dir " + dir + ": " +
                           ec.message());
  }
  char keep_tag[32];
  std::snprintf(keep_tag, sizeof(keep_tag), "-%020llu.snap",
                static_cast<unsigned long long>(keep));
  const std::string keep_suffix = keep_tag;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const bool is_snapshot =
        name.size() > 5 && name.compare(name.size() - 5, 5, ".snap") == 0;
    const bool is_leftover_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (!is_snapshot && !is_leftover_tmp) continue;
    if (is_snapshot && name.size() > keep_suffix.size() &&
        name.compare(name.size() - keep_suffix.size(), keep_suffix.size(),
                     keep_suffix) == 0) {
      continue;  // part of the checkpoint just committed
    }
    std::filesystem::remove(entry.path(), ec);
    if (ec) {
      return Status::IOError("cannot remove stale snapshot " +
                             entry.path().string() + ": " + ec.message());
    }
  }
  return Status::OK();
}

}  // namespace slimfast
