#ifndef SLIMFAST_SERVE_ROUTER_H_
#define SLIMFAST_SERVE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "data/observation_store.h"
#include "data/types.h"
#include "util/hash.h"

namespace slimfast {

/// Deterministic hash router: assigns every object id to one of N shards.
///
/// The assignment is a pure function of (object id, shard count, salt) —
/// no state, no registration — so the ingest path and every query thread
/// route identically without coordination, and an offline replay with
/// the same shard count reproduces the exact same partition. SplitMix64
/// avalanches the id so consecutive object ids spread across shards
/// (contiguous ranges would send hot id ranges to one shard).
///
/// Edge cases are first-class: 1 shard routes everything to shard 0, a
/// shard count above the object count simply leaves some shards
/// permanently empty, and an empty universe routes nothing.
class ShardRouter {
 public:
  /// A router over `num_shards` shards (clamped to >= 1). `salt`
  /// decorrelates the shard hash from the other SplitMix64 users (seed
  /// streams, fingerprints); every router in one service must share it.
  explicit ShardRouter(int32_t num_shards,
                       uint64_t salt = kDefaultSalt);

  int32_t num_shards() const { return num_shards_; }

  /// Shard owning `object`. `object` must be a non-negative id; the
  /// result is in [0, num_shards).
  int32_t ShardOf(ObjectId object) const {
    if (num_shards_ == 1) return 0;
    return static_cast<int32_t>(
        SplitMix64(static_cast<uint64_t>(object) ^ salt_) %
        static_cast<uint64_t>(num_shards_));
  }

  /// Partitions `batch` into one sub-batch per shard (index = shard id).
  /// Observations and truth labels keep their relative order within each
  /// sub-batch, so replaying the sub-batches reproduces each shard's
  /// slice of the stream exactly; shards the batch never touches get
  /// empty sub-batches.
  std::vector<ObservationBatch> Split(const ObservationBatch& batch) const;

  /// Default routing salt (an arbitrary odd 64-bit constant).
  static constexpr uint64_t kDefaultSalt = 0x51a6fa57u;

 private:
  int32_t num_shards_;
  uint64_t salt_;
};

}  // namespace slimfast

#endif  // SLIMFAST_SERVE_ROUTER_H_
