#include "serve/scheduler.h"

#include <algorithm>
#include <string>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace slimfast {

RelearnScheduler::RelearnScheduler(SchedulerOptions options,
                                   int32_t num_shards)
    : options_(options),
      last_relearn_batch_(static_cast<size_t>(num_shards), 0),
      state_(static_cast<size_t>(num_shards)) {}

std::vector<int32_t> RelearnScheduler::DecideCycle(
    int64_t batch_index, const std::vector<ShardSchedInput>& inputs) {
  ++cycles_;
  const int32_t num_shards = static_cast<int32_t>(state_.size());

  struct Candidate {
    double priority;
    int32_t shard;
  };
  std::vector<Candidate> warm;
  std::vector<Candidate> cold;
  std::vector<int32_t> forced;
  for (int32_t s = 0; s < num_shards; ++s) {
    const ShardSchedInput& in = inputs[static_cast<size_t>(s)];
    ShardSchedState& st = state_[static_cast<size_t>(s)];
    st.pending = in.pending;
    st.traffic = in.traffic;
    if (in.pending == 0) {
      // Nothing to absorb: the shard is fresh by definition.
      st.priority = 0.0;
      st.deferred_cycles = 0;
      continue;
    }
    const int64_t staleness =
        std::max<int64_t>(1, batch_index -
                                 last_relearn_batch_[static_cast<size_t>(s)]);
    st.priority = (1.0 + static_cast<double>(in.traffic)) *
                  static_cast<double>(staleness) *
                  static_cast<double>(in.pending);
    if (st.deferred_cycles >= options_.max_deferred_cycles) {
      forced.push_back(s);
    } else if (in.has_model) {
      warm.push_back(Candidate{st.priority, s});
    } else {
      cold.push_back(Candidate{st.priority, s});
    }
  }

  // Deterministic total order: priority descending, shard id ascending.
  auto by_priority = [](const Candidate& a, const Candidate& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.shard < b.shard;
  };
  std::sort(warm.begin(), warm.end(), by_priority);
  std::sort(cold.begin(), cold.end(), by_priority);

  std::vector<int32_t> selected;
  auto take = [&selected](const std::vector<Candidate>& queue,
                          int32_t budget) {
    const size_t limit = budget <= 0 ? queue.size()
                                     : std::min(queue.size(),
                                                static_cast<size_t>(budget));
    for (size_t i = 0; i < limit; ++i) selected.push_back(queue[i].shard);
  };
  take(warm, options_.warm_budget_per_cycle);
  take(cold, options_.cold_budget_per_cycle);
  // Forced shards ride outside the budgets: they already waited
  // max_deferred_cycles decisions, which is the policy's staleness
  // bound.
  selected.insert(selected.end(), forced.begin(), forced.end());
  if (obs::Enabled()) {
    for (int32_t s : forced) {
      obs::EventLog::Global().Emit(
          obs::EventSeverity::kWarn, "scheduler", s,
          "deferral bound fired after " +
              std::to_string(options_.max_deferred_cycles) +
              " deferred cycles batch_index=" +
              std::to_string(batch_index));
    }
  }

  std::vector<uint8_t> picked(static_cast<size_t>(num_shards), 0);
  for (int32_t s : selected) picked[static_cast<size_t>(s)] = 1;
  for (int32_t s = 0; s < num_shards; ++s) {
    ShardSchedState& st = state_[static_cast<size_t>(s)];
    if (picked[static_cast<size_t>(s)] != 0) {
      last_relearn_batch_[static_cast<size_t>(s)] = batch_index;
      st.deferred_cycles = 0;
      ++st.selections;
    } else if (inputs[static_cast<size_t>(s)].pending > 0) {
      ++st.deferred_cycles;
    }
  }
  return selected;
}

void RelearnScheduler::NoteFlush(int64_t batch_index) {
  for (size_t s = 0; s < state_.size(); ++s) {
    ShardSchedState& st = state_[s];
    if (st.pending > 0) ++st.selections;
    st.pending = 0;
    st.priority = 0.0;
    st.deferred_cycles = 0;
    last_relearn_batch_[s] = batch_index;
  }
}

}  // namespace slimfast
