#include "data/observation_store.h"

#include <algorithm>

namespace slimfast {

ObservationStore ObservationStore::FromDataset(const Dataset& dataset) {
  ObservationStore store;
  store.num_sources_ = dataset.num_sources();
  store.num_objects_ = dataset.num_objects();
  store.num_values_ = dataset.num_values();
  const int64_t n = dataset.num_observations();

  store.objects_.reserve(static_cast<size_t>(n));
  store.sources_.reserve(static_cast<size_t>(n));
  store.values_.reserve(static_cast<size_t>(n));
  store.object_offsets_.assign(static_cast<size_t>(store.num_objects_) + 1,
                               0);

  // Canonical order: walk objects ascending, claims in insertion order —
  // the exact order Dataset::ClaimsOnObject exposes.
  for (ObjectId o = 0; o < store.num_objects_; ++o) {
    store.object_offsets_[static_cast<size_t>(o)] =
        static_cast<int64_t>(store.objects_.size());
    for (const SourceClaim& claim : dataset.ClaimsOnObject(o)) {
      store.objects_.push_back(o);
      store.sources_.push_back(claim.source);
      store.values_.push_back(claim.value);
    }
  }
  store.object_offsets_[static_cast<size_t>(store.num_objects_)] =
      static_cast<int64_t>(store.objects_.size());

  // Counting-sort CSR by source over the canonical arrays.
  store.source_offsets_.assign(static_cast<size_t>(store.num_sources_) + 1,
                               0);
  for (SourceId s : store.sources_) {
    ++store.source_offsets_[static_cast<size_t>(s) + 1];
  }
  for (size_t s = 1; s < store.source_offsets_.size(); ++s) {
    store.source_offsets_[s] += store.source_offsets_[s - 1];
  }
  store.source_observations_.assign(store.sources_.size(), 0);
  std::vector<int64_t> cursor(store.source_offsets_.begin(),
                              store.source_offsets_.end() - 1);
  for (size_t i = 0; i < store.sources_.size(); ++i) {
    size_t s = static_cast<size_t>(store.sources_[i]);
    store.source_observations_[static_cast<size_t>(cursor[s]++)] =
        static_cast<int64_t>(i);
  }

  // Flattened domains and truth.
  store.domain_offsets_.assign(static_cast<size_t>(store.num_objects_) + 1,
                               0);
  for (ObjectId o = 0; o < store.num_objects_; ++o) {
    store.domain_offsets_[static_cast<size_t>(o)] =
        static_cast<int64_t>(store.domain_values_.size());
    const std::vector<ValueId>& domain = dataset.DomainOf(o);
    store.domain_values_.insert(store.domain_values_.end(), domain.begin(),
                                domain.end());
  }
  store.domain_offsets_[static_cast<size_t>(store.num_objects_)] =
      static_cast<int64_t>(store.domain_values_.size());

  store.truth_.resize(static_cast<size_t>(store.num_objects_));
  for (ObjectId o = 0; o < store.num_objects_; ++o) {
    store.truth_[static_cast<size_t>(o)] =
        dataset.HasTruth(o) ? dataset.Truth(o) : kNoValue;
  }
  return store;
}

int32_t ObservationStore::DomainIndexOf(ObjectId object, ValueId value) const {
  IndexRange range = DomainRange(object);
  auto begin = domain_values_.begin() + range.begin;
  auto end = domain_values_.begin() + range.end;
  auto it = std::lower_bound(begin, end, value);
  if (it == end || *it != value) return -1;
  return static_cast<int32_t>(it - begin);
}

}  // namespace slimfast
