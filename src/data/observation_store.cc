#include "data/observation_store.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/hash.h"

namespace slimfast {

namespace {

// The fingerprint is a wrapping sum of per-item digests over a mixed-in
// dimension base. Addition commutes, so AppendBatch can fold in a batch's
// digests without re-reading the items that already live mid-array — while
// each digest still pins the item's position within its object's range, so
// reorderings (which change compilation output) change the fingerprint.
constexpr uint64_t kStoreSeed = 0x4f62735374726521ULL;  // "ObsStre!"

uint64_t DimensionDigest(int32_t num_sources, int32_t num_objects,
                         int32_t num_values) {
  uint64_t h = kStoreSeed;
  h = HashCombine(h, static_cast<uint64_t>(num_sources));
  h = HashCombine(h, static_cast<uint64_t>(num_objects));
  h = HashCombine(h, static_cast<uint64_t>(num_values));
  return h;
}

uint64_t ObservationDigest(ObjectId object, int64_t position_in_object,
                           SourceId source, ValueId value) {
  uint64_t h = HashCombine(kStoreSeed, 0x6f627365727665ULL);  // "observe"
  h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(object)));
  h = HashCombine(h, static_cast<uint64_t>(position_in_object));
  h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(source)));
  h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(value)));
  return h;
}

uint64_t TruthDigest(ObjectId object, ValueId value) {
  uint64_t h = HashCombine(kStoreSeed, 0x747275746821ULL);  // "truth!"
  h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(object)));
  h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(value)));
  return h;
}

}  // namespace

void ObservationStore::BuildSourceIndex() {
  source_offsets_.assign(static_cast<size_t>(num_sources_) + 1, 0);
  for (SourceId s : sources_) {
    ++source_offsets_[static_cast<size_t>(s) + 1];
  }
  for (size_t s = 1; s < source_offsets_.size(); ++s) {
    source_offsets_[s] += source_offsets_[s - 1];
  }
  source_observations_.assign(sources_.size(), 0);
  std::vector<int64_t> cursor(source_offsets_.begin(),
                              source_offsets_.end() - 1);
  for (size_t i = 0; i < sources_.size(); ++i) {
    size_t s = static_cast<size_t>(sources_[i]);
    source_observations_[static_cast<size_t>(cursor[s]++)] =
        static_cast<int64_t>(i);
  }
}

ObservationStore ObservationStore::FromDataset(const Dataset& dataset) {
  ObservationStore store;
  store.num_sources_ = dataset.num_sources();
  store.num_objects_ = dataset.num_objects();
  store.num_values_ = dataset.num_values();
  const int64_t n = dataset.num_observations();
  store.fingerprint_ = DimensionDigest(store.num_sources_,
                                       store.num_objects_,
                                       store.num_values_);

  store.objects_.reserve(static_cast<size_t>(n));
  store.sources_.reserve(static_cast<size_t>(n));
  store.values_.reserve(static_cast<size_t>(n));
  store.object_offsets_.assign(static_cast<size_t>(store.num_objects_) + 1,
                               0);

  // Canonical order: walk objects ascending, claims in insertion order —
  // the exact order Dataset::ClaimsOnObject exposes.
  for (ObjectId o = 0; o < store.num_objects_; ++o) {
    store.object_offsets_[static_cast<size_t>(o)] =
        static_cast<int64_t>(store.objects_.size());
    int64_t position = 0;
    for (const SourceClaim& claim : dataset.ClaimsOnObject(o)) {
      store.objects_.push_back(o);
      store.sources_.push_back(claim.source);
      store.values_.push_back(claim.value);
      store.fingerprint_ +=
          ObservationDigest(o, position++, claim.source, claim.value);
    }
  }
  store.object_offsets_[static_cast<size_t>(store.num_objects_)] =
      static_cast<int64_t>(store.objects_.size());

  store.BuildSourceIndex();

  // Flattened domains and truth.
  store.domain_offsets_.assign(static_cast<size_t>(store.num_objects_) + 1,
                               0);
  for (ObjectId o = 0; o < store.num_objects_; ++o) {
    store.domain_offsets_[static_cast<size_t>(o)] =
        static_cast<int64_t>(store.domain_values_.size());
    const std::vector<ValueId>& domain = dataset.DomainOf(o);
    store.domain_values_.insert(store.domain_values_.end(), domain.begin(),
                                domain.end());
  }
  store.domain_offsets_[static_cast<size_t>(store.num_objects_)] =
      static_cast<int64_t>(store.domain_values_.size());

  store.truth_.resize(static_cast<size_t>(store.num_objects_));
  for (ObjectId o = 0; o < store.num_objects_; ++o) {
    ValueId truth = dataset.HasTruth(o) ? dataset.Truth(o) : kNoValue;
    store.truth_[static_cast<size_t>(o)] = truth;
    if (truth != kNoValue) store.fingerprint_ += TruthDigest(o, truth);
  }
  return store;
}

Result<ObservationStore> ObservationStore::AppendBatch(
    const ObservationBatch& batch, std::vector<ObjectId>* touched) const {
  // ---- Validate everything before touching any state. ----
  // Claims grouped per object, preserving batch order within each object
  // (the order they will occupy in the object's extended range).
  std::unordered_map<ObjectId, std::vector<size_t>> by_object;
  for (size_t i = 0; i < batch.observations.size(); ++i) {
    const Observation& obs = batch.observations[i];
    if (obs.object < 0 || obs.object >= num_objects_) {
      return Status::OutOfRange("batch object id " +
                                std::to_string(obs.object) + " out of range");
    }
    if (obs.source < 0 || obs.source >= num_sources_) {
      return Status::OutOfRange("batch source id " +
                                std::to_string(obs.source) + " out of range");
    }
    if (obs.value < 0 || obs.value >= num_values_) {
      return Status::OutOfRange("batch value id " +
                                std::to_string(obs.value) + " out of range");
    }
    by_object[obs.object].push_back(i);
  }
  // One claim per (source, object) across the whole history, matching
  // DatasetBuilder::AddObservation. The object's existing sources go into
  // a hash set once, so validating a batch costs O(existing + batch) per
  // touched object instead of rescanning the claim range for every claim
  // (quadratic on hot objects under sustained ingest).
  std::unordered_set<SourceId> seen_sources;
  for (const auto& [object, indexes] : by_object) {
    IndexRange range = ObjectRange(object);
    seen_sources.clear();
    seen_sources.reserve(static_cast<size_t>(range.size()) + indexes.size());
    for (int64_t i = range.begin; i < range.end; ++i) {
      seen_sources.insert(sources_[static_cast<size_t>(i)]);
    }
    for (size_t a = 0; a < indexes.size(); ++a) {
      SourceId source = batch.observations[indexes[a]].source;
      if (seen_sources.count(source) > 0) {
        return Status::AlreadyExists(
            "duplicate observation for object " + std::to_string(object) +
            " by source " + std::to_string(source));
      }
      for (size_t b = a + 1; b < indexes.size(); ++b) {
        if (batch.observations[indexes[b]].source == source) {
          return Status::AlreadyExists(
              "batch claims object " + std::to_string(object) +
              " twice for source " + std::to_string(source));
        }
      }
    }
  }
  // Truth labels must be in range and consistent with recorded truth; a
  // label repeated (in history or within the batch) with the same value is
  // a no-op.
  std::unordered_map<ObjectId, ValueId> new_truth;
  for (const TruthLabel& label : batch.truths) {
    if (label.object < 0 || label.object >= num_objects_) {
      return Status::OutOfRange("truth object id " +
                                std::to_string(label.object) +
                                " out of range");
    }
    if (label.value < 0 || label.value >= num_values_) {
      return Status::OutOfRange("truth value id " +
                                std::to_string(label.value) +
                                " out of range");
    }
    ValueId existing = truth_[static_cast<size_t>(label.object)];
    if (existing != kNoValue && existing != label.value) {
      return Status::FailedPrecondition(
          "conflicting truth for object " + std::to_string(label.object));
    }
    auto [it, inserted] = new_truth.emplace(label.object, label.value);
    if (!inserted && it->second != label.value) {
      return Status::FailedPrecondition(
          "batch asserts two truths for object " +
          std::to_string(label.object));
    }
    if (existing != kNoValue) new_truth.erase(label.object);  // no-op label
  }

  // ---- Splice the columnar arrays (single merge pass). ----
  ObservationStore out;
  out.num_sources_ = num_sources_;
  out.num_objects_ = num_objects_;
  out.num_values_ = num_values_;
  out.fingerprint_ = fingerprint_;

  const size_t total =
      objects_.size() + batch.observations.size();
  out.objects_.reserve(total);
  out.sources_.reserve(total);
  out.values_.reserve(total);
  out.object_offsets_.assign(static_cast<size_t>(num_objects_) + 1, 0);
  for (ObjectId o = 0; o < num_objects_; ++o) {
    out.object_offsets_[static_cast<size_t>(o)] =
        static_cast<int64_t>(out.objects_.size());
    IndexRange range = ObjectRange(o);
    out.objects_.insert(out.objects_.end(),
                        objects_.begin() + range.begin,
                        objects_.begin() + range.end);
    out.sources_.insert(out.sources_.end(),
                        sources_.begin() + range.begin,
                        sources_.begin() + range.end);
    out.values_.insert(out.values_.end(),
                       values_.begin() + range.begin,
                       values_.begin() + range.end);
    auto it = by_object.find(o);
    if (it == by_object.end()) continue;
    int64_t position = range.size();
    for (size_t idx : it->second) {
      const Observation& obs = batch.observations[idx];
      out.objects_.push_back(obs.object);
      out.sources_.push_back(obs.source);
      out.values_.push_back(obs.value);
      out.fingerprint_ +=
          ObservationDigest(o, position++, obs.source, obs.value);
    }
  }
  out.object_offsets_[static_cast<size_t>(num_objects_)] =
      static_cast<int64_t>(out.objects_.size());

  out.BuildSourceIndex();

  // ---- Patch the flattened domains: untouched objects copy their range,
  // touched objects re-merge (sorted, deduplicated — the Dataset domain
  // contract). ----
  out.domain_offsets_.assign(static_cast<size_t>(num_objects_) + 1, 0);
  out.domain_values_.reserve(domain_values_.size());
  std::vector<ValueId> merged;
  for (ObjectId o = 0; o < num_objects_; ++o) {
    out.domain_offsets_[static_cast<size_t>(o)] =
        static_cast<int64_t>(out.domain_values_.size());
    IndexRange range = DomainRange(o);
    auto it = by_object.find(o);
    if (it == by_object.end()) {
      out.domain_values_.insert(out.domain_values_.end(),
                                domain_values_.begin() + range.begin,
                                domain_values_.begin() + range.end);
      continue;
    }
    merged.assign(domain_values_.begin() + range.begin,
                  domain_values_.begin() + range.end);
    for (size_t idx : it->second) {
      merged.push_back(batch.observations[idx].value);
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    out.domain_values_.insert(out.domain_values_.end(), merged.begin(),
                              merged.end());
  }
  out.domain_offsets_[static_cast<size_t>(num_objects_)] =
      static_cast<int64_t>(out.domain_values_.size());

  // ---- Truth. ----
  out.truth_ = truth_;
  for (const auto& [object, value] : new_truth) {
    out.truth_[static_cast<size_t>(object)] = value;
    out.fingerprint_ += TruthDigest(object, value);
  }

  if (touched != nullptr) {
    touched->clear();
    touched->reserve(by_object.size() + new_truth.size());
    for (const auto& [object, indexes] : by_object) {
      touched->push_back(object);
    }
    for (const auto& [object, value] : new_truth) {
      touched->push_back(object);
    }
    std::sort(touched->begin(), touched->end());
    touched->erase(std::unique(touched->begin(), touched->end()),
                   touched->end());
  }
  return out;
}

std::vector<ObservationBatch> ChunkDatasetForReplay(const Dataset& dataset,
                                                    int32_t num_chunks) {
  if (num_chunks < 1) num_chunks = 1;
  const int64_t n = dataset.num_observations();
  std::vector<ObservationBatch> chunks(static_cast<size_t>(num_chunks));

  // Contiguous runs of the arrival order, sizes differing by at most one
  // (the same static split StaticShards uses).
  std::vector<int32_t> first_chunk_of_object(
      static_cast<size_t>(dataset.num_objects()), -1);
  int64_t begin = 0;
  for (int32_t c = 0; c < num_chunks; ++c) {
    int64_t end = begin + n / num_chunks +
                  (static_cast<int64_t>(c) < n % num_chunks ? 1 : 0);
    ObservationBatch& chunk = chunks[static_cast<size_t>(c)];
    chunk.observations.assign(dataset.observations().begin() + begin,
                              dataset.observations().begin() + end);
    for (const Observation& obs : chunk.observations) {
      int32_t& first = first_chunk_of_object[static_cast<size_t>(obs.object)];
      if (first < 0) first = c;
    }
    begin = end;
  }

  for (ObjectId o : dataset.ObjectsWithTruth()) {
    int32_t c = first_chunk_of_object[static_cast<size_t>(o)];
    if (c < 0) c = 0;  // labeled but never observed
    chunks[static_cast<size_t>(c)].truths.push_back(
        TruthLabel{o, dataset.Truth(o)});
  }
  return chunks;
}

ObservationStore::Columns ObservationStore::ToColumns() const {
  Columns columns;
  columns.num_sources = num_sources_;
  columns.num_objects = num_objects_;
  columns.num_values = num_values_;
  columns.objects = objects_;
  columns.sources = sources_;
  columns.values = values_;
  columns.object_offsets = object_offsets_;
  columns.truth = truth_;
  columns.fingerprint = fingerprint_;
  return columns;
}

Result<ObservationStore> ObservationStore::FromColumns(Columns columns) {
  if (columns.num_sources < 0 || columns.num_objects < 0 ||
      columns.num_values < 0) {
    return Status::InvalidArgument("store columns carry negative dimensions");
  }
  const size_t num_objects = static_cast<size_t>(columns.num_objects);
  const size_t n = columns.objects.size();
  if (columns.sources.size() != n || columns.values.size() != n) {
    return Status::InvalidArgument(
        "store columns have mismatched observation array lengths");
  }
  if (columns.object_offsets.size() != num_objects + 1 ||
      columns.object_offsets.front() != 0 ||
      columns.object_offsets.back() != static_cast<int64_t>(n)) {
    return Status::InvalidArgument("store object offsets are malformed");
  }
  if (columns.truth.size() != num_objects) {
    return Status::InvalidArgument("store truth column is mis-sized");
  }

  // Recompute the fingerprint from scratch while validating ranges; a
  // match at the end certifies the columns describe exactly the store
  // that was serialized.
  uint64_t fingerprint = DimensionDigest(
      columns.num_sources, columns.num_objects, columns.num_values);
  for (ObjectId o = 0; o < columns.num_objects; ++o) {
    const int64_t begin = columns.object_offsets[static_cast<size_t>(o)];
    const int64_t end = columns.object_offsets[static_cast<size_t>(o) + 1];
    if (begin > end) {
      return Status::InvalidArgument(
          "store object offsets are not monotone");
    }
    for (int64_t i = begin; i < end; ++i) {
      const size_t k = static_cast<size_t>(i);
      if (columns.objects[k] != o) {
        return Status::InvalidArgument(
            "store object column disagrees with its offsets");
      }
      const SourceId source = columns.sources[k];
      const ValueId value = columns.values[k];
      if (source < 0 || source >= columns.num_sources || value < 0 ||
          value >= columns.num_values) {
        return Status::InvalidArgument(
            "store columns carry out-of-range ids");
      }
      fingerprint += ObservationDigest(o, i - begin, source, value);
    }
  }
  for (ObjectId o = 0; o < columns.num_objects; ++o) {
    const ValueId truth = columns.truth[static_cast<size_t>(o)];
    if (truth == kNoValue) continue;
    if (truth < 0 || truth >= columns.num_values) {
      return Status::InvalidArgument("store truth value out of range");
    }
    fingerprint += TruthDigest(o, truth);
  }
  if (fingerprint != columns.fingerprint) {
    return Status::InvalidArgument(
        "store fingerprint mismatch: columns hash to " +
        std::to_string(fingerprint) + ", serialized fingerprint is " +
        std::to_string(columns.fingerprint));
  }

  ObservationStore store;
  store.num_sources_ = columns.num_sources;
  store.num_objects_ = columns.num_objects;
  store.num_values_ = columns.num_values;
  store.objects_ = std::move(columns.objects);
  store.sources_ = std::move(columns.sources);
  store.values_ = std::move(columns.values);
  store.object_offsets_ = std::move(columns.object_offsets);
  store.truth_ = std::move(columns.truth);
  store.fingerprint_ = fingerprint;
  store.BuildSourceIndex();

  // Domains are derived state: the sorted, deduplicated claimed values of
  // each object (the Dataset domain contract), rebuilt rather than
  // deserialized.
  store.domain_offsets_.assign(num_objects + 1, 0);
  std::vector<ValueId> merged;
  for (ObjectId o = 0; o < store.num_objects_; ++o) {
    store.domain_offsets_[static_cast<size_t>(o)] =
        static_cast<int64_t>(store.domain_values_.size());
    IndexRange range = store.ObjectRange(o);
    merged.assign(store.values_.begin() + range.begin,
                  store.values_.begin() + range.end);
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    store.domain_values_.insert(store.domain_values_.end(), merged.begin(),
                                merged.end());
  }
  store.domain_offsets_[num_objects] =
      static_cast<int64_t>(store.domain_values_.size());
  return store;
}

int32_t ObservationStore::DomainIndexOf(ObjectId object, ValueId value) const {
  IndexRange range = DomainRange(object);
  auto begin = domain_values_.begin() + range.begin;
  auto end = domain_values_.begin() + range.end;
  auto it = std::lower_bound(begin, end, value);
  if (it == end || *it != value) return -1;
  return static_cast<int32_t>(it - begin);
}

}  // namespace slimfast
