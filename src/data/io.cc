#include "data/io.h"

#include <cstdlib>
#include <string>

#include "util/csv.h"

namespace slimfast {

namespace {

Result<int64_t> ParseInt(const std::string& text) {
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("cannot parse integer from '" + text +
                                   "'");
  }
  return static_cast<int64_t>(value);
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  CsvTable meta({"name", "num_sources", "num_objects", "num_values"});
  SLIMFAST_RETURN_NOT_OK(meta.AppendRow(
      {dataset.name(), std::to_string(dataset.num_sources()),
       std::to_string(dataset.num_objects()),
       std::to_string(dataset.num_values())}));
  SLIMFAST_RETURN_NOT_OK(meta.WriteFile(dir + "/meta.csv"));

  CsvTable obs({"object", "source", "value"});
  for (const Observation& o : dataset.observations()) {
    SLIMFAST_RETURN_NOT_OK(obs.AppendRow({std::to_string(o.object),
                                          std::to_string(o.source),
                                          std::to_string(o.value)}));
  }
  SLIMFAST_RETURN_NOT_OK(obs.WriteFile(dir + "/observations.csv"));

  CsvTable truth({"object", "value"});
  for (ObjectId o : dataset.ObjectsWithTruth()) {
    SLIMFAST_RETURN_NOT_OK(truth.AppendRow(
        {std::to_string(o), std::to_string(dataset.Truth(o))}));
  }
  SLIMFAST_RETURN_NOT_OK(truth.WriteFile(dir + "/truth.csv"));

  CsvTable features({"feature_id", "name"});
  for (FeatureId k = 0; k < dataset.features().num_features(); ++k) {
    SLIMFAST_RETURN_NOT_OK(features.AppendRow(
        {std::to_string(k), dataset.features().FeatureName(k)}));
  }
  SLIMFAST_RETURN_NOT_OK(features.WriteFile(dir + "/features.csv"));

  CsvTable source_features({"source", "feature_id"});
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    for (FeatureId k : dataset.features().FeaturesOf(s)) {
      SLIMFAST_RETURN_NOT_OK(source_features.AppendRow(
          {std::to_string(s), std::to_string(k)}));
    }
  }
  SLIMFAST_RETURN_NOT_OK(
      source_features.WriteFile(dir + "/source_features.csv"));
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& dir) {
  SLIMFAST_ASSIGN_OR_RETURN(CsvTable meta,
                            CsvTable::ReadFile(dir + "/meta.csv"));
  if (meta.num_rows() != 1 || meta.num_columns() != 4) {
    return Status::InvalidArgument("malformed meta.csv in '" + dir + "'");
  }
  const auto& meta_row = meta.rows()[0];
  SLIMFAST_ASSIGN_OR_RETURN(int64_t num_sources, ParseInt(meta_row[1]));
  SLIMFAST_ASSIGN_OR_RETURN(int64_t num_objects, ParseInt(meta_row[2]));
  SLIMFAST_ASSIGN_OR_RETURN(int64_t num_values, ParseInt(meta_row[3]));

  DatasetBuilder builder(meta_row[0], static_cast<int32_t>(num_sources),
                         static_cast<int32_t>(num_objects),
                         static_cast<int32_t>(num_values));

  SLIMFAST_ASSIGN_OR_RETURN(CsvTable obs,
                            CsvTable::ReadFile(dir + "/observations.csv"));
  for (const auto& row : obs.rows()) {
    if (row.size() != 3) {
      return Status::InvalidArgument("malformed observations.csv row");
    }
    SLIMFAST_ASSIGN_OR_RETURN(int64_t object, ParseInt(row[0]));
    SLIMFAST_ASSIGN_OR_RETURN(int64_t source, ParseInt(row[1]));
    SLIMFAST_ASSIGN_OR_RETURN(int64_t value, ParseInt(row[2]));
    SLIMFAST_RETURN_NOT_OK(builder.AddObservation(
        static_cast<ObjectId>(object), static_cast<SourceId>(source),
        static_cast<ValueId>(value)));
  }

  SLIMFAST_ASSIGN_OR_RETURN(CsvTable truth,
                            CsvTable::ReadFile(dir + "/truth.csv"));
  for (const auto& row : truth.rows()) {
    if (row.size() != 2) {
      return Status::InvalidArgument("malformed truth.csv row");
    }
    SLIMFAST_ASSIGN_OR_RETURN(int64_t object, ParseInt(row[0]));
    SLIMFAST_ASSIGN_OR_RETURN(int64_t value, ParseInt(row[1]));
    SLIMFAST_RETURN_NOT_OK(builder.SetTruth(static_cast<ObjectId>(object),
                                            static_cast<ValueId>(value)));
  }

  SLIMFAST_ASSIGN_OR_RETURN(CsvTable features,
                            CsvTable::ReadFile(dir + "/features.csv"));
  for (const auto& row : features.rows()) {
    if (row.size() != 2) {
      return Status::InvalidArgument("malformed features.csv row");
    }
    // Registration order preserves ids because feature_id rows are written
    // in ascending order.
    builder.mutable_features()->RegisterFeature(row[1]);
  }

  SLIMFAST_ASSIGN_OR_RETURN(
      CsvTable source_features,
      CsvTable::ReadFile(dir + "/source_features.csv"));
  for (const auto& row : source_features.rows()) {
    if (row.size() != 2) {
      return Status::InvalidArgument("malformed source_features.csv row");
    }
    SLIMFAST_ASSIGN_OR_RETURN(int64_t source, ParseInt(row[0]));
    SLIMFAST_ASSIGN_OR_RETURN(int64_t feature, ParseInt(row[1]));
    SLIMFAST_RETURN_NOT_OK(builder.mutable_features()->SetFeature(
        static_cast<SourceId>(source), static_cast<FeatureId>(feature)));
  }

  return std::move(builder).Build();
}

}  // namespace slimfast
