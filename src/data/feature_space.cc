#include "data/feature_space.h"

#include <algorithm>

#include "util/logging.h"

namespace slimfast {

FeatureId FeatureSpace::RegisterFeature(const std::string& name) {
  auto it = name_to_id_.find(name);
  if (it != name_to_id_.end()) return it->second;
  FeatureId id = static_cast<FeatureId>(feature_names_.size());
  feature_names_.push_back(name);
  name_to_id_.emplace(name, id);
  return id;
}

Result<FeatureId> FeatureSpace::FindFeature(const std::string& name) const {
  auto it = name_to_id_.find(name);
  if (it == name_to_id_.end()) {
    return Status::NotFound("no feature named '" + name + "'");
  }
  return it->second;
}

const std::string& FeatureSpace::FeatureName(FeatureId id) const {
  SLIMFAST_DCHECK(id >= 0 && id < num_features(), "feature id out of range");
  return feature_names_[static_cast<size_t>(id)];
}

Status FeatureSpace::SetFeature(SourceId source, FeatureId feature) {
  if (source < 0 || source >= num_sources()) {
    return Status::OutOfRange("source id " + std::to_string(source) +
                              " out of range [0, " +
                              std::to_string(num_sources()) + ")");
  }
  if (feature < 0 || feature >= num_features()) {
    return Status::OutOfRange("feature id " + std::to_string(feature) +
                              " out of range [0, " +
                              std::to_string(num_features()) + ")");
  }
  auto& feats = source_features_[static_cast<size_t>(source)];
  auto it = std::lower_bound(feats.begin(), feats.end(), feature);
  if (it == feats.end() || *it != feature) {
    feats.insert(it, feature);
  }
  return Status::OK();
}

const std::vector<FeatureId>& FeatureSpace::FeaturesOf(
    SourceId source) const {
  SLIMFAST_DCHECK(source >= 0 && source < num_sources(),
                  "source id out of range");
  return source_features_[static_cast<size_t>(source)];
}

bool FeatureSpace::HasFeature(SourceId source, FeatureId feature) const {
  const auto& feats = FeaturesOf(source);
  return std::binary_search(feats.begin(), feats.end(), feature);
}

int64_t FeatureSpace::TotalActiveFeatures() const {
  int64_t total = 0;
  for (const auto& feats : source_features_) {
    total += static_cast<int64_t>(feats.size());
  }
  return total;
}

}  // namespace slimfast
