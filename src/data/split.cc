#include "data/split.h"

#include <algorithm>
#include <cmath>

namespace slimfast {

Result<TrainTestSplit> MakeSplit(const Dataset& dataset,
                                 double train_fraction, Rng* rng) {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    return Status::InvalidArgument("train_fraction must be in [0, 1]");
  }
  const std::vector<ObjectId>& labeled = dataset.ObjectsWithTruth();
  if (labeled.empty()) {
    return Status::FailedPrecondition(
        "dataset has no ground-truth-labeled objects to split");
  }
  int64_t n = static_cast<int64_t>(labeled.size());
  int64_t k = static_cast<int64_t>(
      std::llround(train_fraction * static_cast<double>(n)));
  if (train_fraction > 0.0 && k == 0) k = 1;
  if (train_fraction < 1.0 && k == n) k = n - 1;

  std::vector<int64_t> picks = rng->SampleWithoutReplacement(n, k);
  TrainTestSplit split;
  split.is_train.assign(static_cast<size_t>(dataset.num_objects()), 0);
  split.train_objects.reserve(static_cast<size_t>(k));
  for (int64_t idx : picks) {
    ObjectId o = labeled[static_cast<size_t>(idx)];
    split.train_objects.push_back(o);
    split.is_train[static_cast<size_t>(o)] = 1;
  }
  std::sort(split.train_objects.begin(), split.train_objects.end());
  split.test_objects.reserve(static_cast<size_t>(n - k));
  for (ObjectId o : labeled) {
    if (!split.IsTrain(o)) split.test_objects.push_back(o);
  }
  return split;
}

int64_t CountLabeledObservations(const Dataset& dataset,
                                 const TrainTestSplit& split) {
  int64_t count = 0;
  for (ObjectId o : split.train_objects) {
    count += static_cast<int64_t>(dataset.ClaimsOnObject(o).size());
  }
  return count;
}

}  // namespace slimfast
