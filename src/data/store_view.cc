#include "data/store_view.h"

namespace slimfast {

bool ObservationStoreView::Observed(ObjectId object) const {
  return NumClaimsOn(object) > 0;
}

int64_t ObservationStoreView::NumClaimsOn(ObjectId object) const {
  if (!ValidObject(object)) return 0;
  return store_->ObjectRange(object).size();
}

int64_t ObservationStoreView::NumClaimsBy(SourceId source) const {
  if (store_ == nullptr || source < 0 || source >= store_->num_sources()) {
    return 0;
  }
  return store_->SourceRange(source).size();
}

int32_t ObservationStoreView::DomainSizeOf(ObjectId object) const {
  if (!ValidObject(object)) return 0;
  return static_cast<int32_t>(store_->DomainRange(object).size());
}

ValueId ObservationStoreView::TruthOf(ObjectId object) const {
  if (!ValidObject(object)) return kNoValue;
  return store_->truth()[static_cast<size_t>(object)];
}

std::vector<int32_t> ObservationStoreView::ClaimCounts() const {
  std::vector<int32_t> counts(
      static_cast<size_t>(store_ == nullptr ? 0 : store_->num_objects()), 0);
  for (ObjectId o = 0; o < static_cast<ObjectId>(counts.size()); ++o) {
    counts[static_cast<size_t>(o)] =
        static_cast<int32_t>(store_->ObjectRange(o).size());
  }
  return counts;
}

}  // namespace slimfast
