#ifndef SLIMFAST_DATA_TYPES_H_
#define SLIMFAST_DATA_TYPES_H_

#include <cstdint>

namespace slimfast {

/// Dense 0-based identifier of a data source (article, web domain, worker...).
using SourceId = int32_t;

/// Dense 0-based identifier of an object (gene-disease pair, stock-day, ...).
using ObjectId = int32_t;

/// Dense 0-based identifier of a claimed value within the dataset's value
/// dictionary. Binary datasets use {0, 1}.
using ValueId = int32_t;

/// Dense 0-based identifier of a boolean domain-specific feature
/// ("citations=high", "channel=clixsense", ...).
using FeatureId = int32_t;

/// Sentinel for "no value": objects without ground truth use this.
inline constexpr ValueId kNoValue = -1;

/// One source observation: source `source` claims that object `object` has
/// value `value` (the triple (o, s, v_{o,s}) of the paper).
struct Observation {
  ObjectId object;
  SourceId source;
  ValueId value;

  bool operator==(const Observation& other) const = default;
};

}  // namespace slimfast

#endif  // SLIMFAST_DATA_TYPES_H_
