#ifndef SLIMFAST_DATA_STORE_VIEW_H_
#define SLIMFAST_DATA_STORE_VIEW_H_

#include <cstdint>
#include <vector>

#include "data/observation_store.h"
#include "data/types.h"

namespace slimfast {

/// A non-owning, read-only window onto an `ObservationStore` — the shape
/// the serving layer reads through.
///
/// The store itself is immutable, but serving code holds it indirectly
/// (inside a `CompiledInstance` kept alive by a `shared_ptr` snapshot),
/// and handing every reader the full class invites accidental copies of
/// the columnar arrays. The view is two words (pointer + nothing else to
/// invalidate): cheap to pass by value, impossible to mutate through,
/// and exposing only the read paths queries need — per-object claim
/// slices, domains, truth, and the content fingerprint.
///
/// Lifetime: the view borrows; the caller keeps the underlying store (or
/// the instance/snapshot owning it) alive. A default-constructed view is
/// detached and reports an empty store.
class ObservationStoreView {
 public:
  /// A detached view over nothing (0 objects, 0 observations).
  ObservationStoreView() = default;

  /// A view over `store`; borrows, never owns.
  explicit ObservationStoreView(const ObservationStore* store)
      : store_(store) {}

  bool attached() const { return store_ != nullptr; }

  int32_t num_sources() const {
    return store_ == nullptr ? 0 : store_->num_sources();
  }
  int32_t num_objects() const {
    return store_ == nullptr ? 0 : store_->num_objects();
  }
  int32_t num_values() const {
    return store_ == nullptr ? 0 : store_->num_values();
  }
  int64_t num_observations() const {
    return store_ == nullptr ? 0 : store_->num_observations();
  }
  uint64_t content_fingerprint() const {
    return store_ == nullptr ? 0 : store_->content_fingerprint();
  }

  /// True when `object` is a valid id with at least one observation.
  bool Observed(ObjectId object) const;

  /// Number of claims on `object` (0 for out-of-range ids).
  int64_t NumClaimsOn(ObjectId object) const;

  /// Number of observations contributed by `source` (0 out of range).
  int64_t NumClaimsBy(SourceId source) const;

  /// Candidate-domain size of `object` (0 out of range / unobserved).
  int32_t DomainSizeOf(ObjectId object) const;

  /// Ground truth of `object`, kNoValue when unknown or out of range.
  ValueId TruthOf(ObjectId object) const;

  /// Per-object claim counts for the whole universe — the evidence-mass
  /// column the serving snapshot exports.
  std::vector<int32_t> ClaimCounts() const;

 private:
  bool ValidObject(ObjectId object) const {
    return store_ != nullptr && object >= 0 &&
           object < store_->num_objects();
  }

  const ObservationStore* store_ = nullptr;
};

}  // namespace slimfast

#endif  // SLIMFAST_DATA_STORE_VIEW_H_
