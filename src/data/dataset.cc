#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"

namespace slimfast {

const std::vector<SourceClaim>& Dataset::ClaimsOnObject(
    ObjectId object) const {
  SLIMFAST_DCHECK(object >= 0 && object < num_objects_,
                  "object id out of range");
  return by_object_[static_cast<size_t>(object)];
}

const std::vector<ObjectClaim>& Dataset::ClaimsBySource(
    SourceId source) const {
  SLIMFAST_DCHECK(source >= 0 && source < num_sources_,
                  "source id out of range");
  return by_source_[static_cast<size_t>(source)];
}

const std::vector<ValueId>& Dataset::DomainOf(ObjectId object) const {
  SLIMFAST_DCHECK(object >= 0 && object < num_objects_,
                  "object id out of range");
  return domains_[static_cast<size_t>(object)];
}

bool Dataset::HasTruth(ObjectId object) const {
  SLIMFAST_DCHECK(object >= 0 && object < num_objects_,
                  "object id out of range");
  return truth_[static_cast<size_t>(object)] != kNoValue;
}

ValueId Dataset::Truth(ObjectId object) const {
  SLIMFAST_DCHECK(object >= 0 && object < num_objects_,
                  "object id out of range");
  return truth_[static_cast<size_t>(object)];
}

Result<double> Dataset::EmpiricalSourceAccuracy(SourceId source) const {
  const auto& claims = ClaimsBySource(source);
  int64_t labeled = 0;
  int64_t correct = 0;
  for (const auto& claim : claims) {
    if (!HasTruth(claim.object)) continue;
    ++labeled;
    if (claim.value == Truth(claim.object)) ++correct;
  }
  if (labeled == 0) {
    return Status::NotFound("source " + std::to_string(source) +
                            " has no claims on labeled objects");
  }
  return static_cast<double>(correct) / static_cast<double>(labeled);
}

DatasetBuilder::DatasetBuilder(std::string name, int32_t num_sources,
                               int32_t num_objects, int32_t num_values)
    : name_(std::move(name)),
      num_sources_(num_sources),
      num_objects_(num_objects),
      num_values_(num_values),
      truth_(static_cast<size_t>(num_objects), kNoValue),
      features_(num_sources) {
  SLIMFAST_DCHECK(num_sources >= 0, "num_sources must be >= 0");
  SLIMFAST_DCHECK(num_objects >= 0, "num_objects must be >= 0");
  SLIMFAST_DCHECK(num_values >= 1, "num_values must be >= 1");
}

Status DatasetBuilder::AddObservation(ObjectId object, SourceId source,
                                      ValueId value) {
  if (object < 0 || object >= num_objects_) {
    return Status::OutOfRange("object id " + std::to_string(object) +
                              " out of range");
  }
  if (source < 0 || source >= num_sources_) {
    return Status::OutOfRange("source id " + std::to_string(source) +
                              " out of range");
  }
  if (value < 0 || value >= num_values_) {
    return Status::OutOfRange("value id " + std::to_string(value) +
                              " out of range");
  }
  int64_t key =
      static_cast<int64_t>(object) * num_sources_ + static_cast<int64_t>(source);
  if (!seen_pairs_.insert(key).second) {
    return Status::AlreadyExists(
        "duplicate observation for object " + std::to_string(object) +
        " by source " + std::to_string(source));
  }
  observations_.push_back(Observation{object, source, value});
  return Status::OK();
}

Status DatasetBuilder::SetTruth(ObjectId object, ValueId value) {
  if (object < 0 || object >= num_objects_) {
    return Status::OutOfRange("object id " + std::to_string(object) +
                              " out of range");
  }
  if (value < 0 || value >= num_values_) {
    return Status::OutOfRange("value id " + std::to_string(value) +
                              " out of range");
  }
  truth_[static_cast<size_t>(object)] = value;
  return Status::OK();
}

Result<Dataset> DatasetBuilder::Build() && {
  Dataset dataset;
  dataset.name_ = std::move(name_);
  dataset.num_sources_ = num_sources_;
  dataset.num_objects_ = num_objects_;
  dataset.num_values_ = num_values_;
  dataset.observations_ = std::move(observations_);
  dataset.truth_ = std::move(truth_);
  dataset.features_ = std::move(features_);

  dataset.by_object_.resize(static_cast<size_t>(num_objects_));
  dataset.by_source_.resize(static_cast<size_t>(num_sources_));
  dataset.domains_.resize(static_cast<size_t>(num_objects_));
  for (const Observation& obs : dataset.observations_) {
    dataset.by_object_[static_cast<size_t>(obs.object)].push_back(
        SourceClaim{obs.source, obs.value});
    dataset.by_source_[static_cast<size_t>(obs.source)].push_back(
        ObjectClaim{obs.object, obs.value});
  }
  for (ObjectId o = 0; o < num_objects_; ++o) {
    auto& domain = dataset.domains_[static_cast<size_t>(o)];
    for (const SourceClaim& claim :
         dataset.by_object_[static_cast<size_t>(o)]) {
      domain.push_back(claim.value);
    }
    std::sort(domain.begin(), domain.end());
    domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  }
  for (ObjectId o = 0; o < num_objects_; ++o) {
    if (dataset.truth_[static_cast<size_t>(o)] != kNoValue) {
      dataset.objects_with_truth_.push_back(o);
    }
  }
  return dataset;
}

}  // namespace slimfast
