#ifndef SLIMFAST_DATA_FEATURE_SPACE_H_
#define SLIMFAST_DATA_FEATURE_SPACE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/types.h"
#include "util/result.h"
#include "util/status.h"

namespace slimfast {

/// Registry of boolean domain-specific features and the per-source sets of
/// active features (the f_{s,k} values of the paper, Sec. 3.1).
///
/// Following the paper's setup, numeric metadata (citation counts, traffic
/// statistics, ...) is discretized into boolean indicator features before it
/// reaches the model, so a source is described by the sparse set of features
/// that are "on" for it. Feature values are grouped by a human-readable
/// name such as "citations=high".
class FeatureSpace {
 public:
  FeatureSpace() = default;

  /// Creates a feature space for `num_sources` sources.
  explicit FeatureSpace(int32_t num_sources)
      : source_features_(static_cast<size_t>(num_sources)) {}

  int32_t num_sources() const {
    return static_cast<int32_t>(source_features_.size());
  }
  int32_t num_features() const {
    return static_cast<int32_t>(feature_names_.size());
  }

  /// Registers (or looks up) a feature by name and returns its id.
  FeatureId RegisterFeature(const std::string& name);

  /// Returns the id of an already-registered feature, or NotFound.
  Result<FeatureId> FindFeature(const std::string& name) const;

  /// Name of a feature id. Requires a valid id.
  const std::string& FeatureName(FeatureId id) const;

  /// Turns feature `feature` on for source `source`. Idempotent.
  Status SetFeature(SourceId source, FeatureId feature);

  /// Active features of a source, sorted ascending.
  const std::vector<FeatureId>& FeaturesOf(SourceId source) const;

  /// True if `feature` is active for `source`.
  bool HasFeature(SourceId source, FeatureId feature) const;

  /// Number of (source, feature) active pairs across all sources.
  int64_t TotalActiveFeatures() const;

 private:
  std::vector<std::string> feature_names_;
  std::unordered_map<std::string, FeatureId> name_to_id_;
  // Sorted sparse representation per source.
  std::vector<std::vector<FeatureId>> source_features_;
};

}  // namespace slimfast

#endif  // SLIMFAST_DATA_FEATURE_SPACE_H_
