#ifndef SLIMFAST_DATA_DATASET_H_
#define SLIMFAST_DATA_DATASET_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/feature_space.h"
#include "data/types.h"
#include "util/result.h"
#include "util/status.h"

namespace slimfast {

/// An observation as seen from an object: which source said which value.
struct SourceClaim {
  SourceId source;
  ValueId value;
  bool operator==(const SourceClaim&) const = default;
};

/// An observation as seen from a source: which object got which value.
struct ObjectClaim {
  ObjectId object;
  ValueId value;
  bool operator==(const ObjectClaim&) const = default;
};

/// Immutable data-fusion instance: sources, objects, the observation
/// multiset Ω, optional ground truth, and the domain-specific feature space.
///
/// A Dataset is constructed through DatasetBuilder, which validates ids and
/// rejects duplicate (source, object) observations (the paper assumes one
/// claim per source per object). All per-object and per-source indexes are
/// built once at Build() time so model code can iterate without hashing.
class Dataset {
 public:
  /// Creates an empty dataset (no sources, objects, or observations);
  /// mainly useful as a placeholder before assignment.
  Dataset() = default;

  int32_t num_sources() const { return num_sources_; }
  int32_t num_objects() const { return num_objects_; }
  /// Size of the global value dictionary (2 for binary datasets).
  int32_t num_values() const { return num_values_; }
  int64_t num_observations() const {
    return static_cast<int64_t>(observations_.size());
  }

  const std::vector<Observation>& observations() const {
    return observations_;
  }

  /// Claims made about `object`, in insertion order.
  const std::vector<SourceClaim>& ClaimsOnObject(ObjectId object) const;

  /// Claims made by `source`, in insertion order.
  const std::vector<ObjectClaim>& ClaimsBySource(SourceId source) const;

  /// Distinct values claimed for `object` (the domain D_o), ascending.
  const std::vector<ValueId>& DomainOf(ObjectId object) const;

  /// True if ground truth is known for `object`.
  bool HasTruth(ObjectId object) const;

  /// Ground truth value of `object`, or kNoValue if unknown.
  ValueId Truth(ObjectId object) const;

  /// Objects that carry ground truth, ascending.
  const std::vector<ObjectId>& ObjectsWithTruth() const {
    return objects_with_truth_;
  }

  const FeatureSpace& features() const { return features_; }

  /// Empirical accuracy of `source` against ground truth: the fraction of
  /// its claims on truth-labeled objects that are correct. Returns
  /// NotFound if the source has no claims on labeled objects.
  Result<double> EmpiricalSourceAccuracy(SourceId source) const;

  /// Human-readable dataset name (e.g. "stocks-sim"); may be empty.
  const std::string& name() const { return name_; }

 private:
  friend class DatasetBuilder;

  std::string name_;
  int32_t num_sources_ = 0;
  int32_t num_objects_ = 0;
  int32_t num_values_ = 0;
  std::vector<Observation> observations_;
  std::vector<std::vector<SourceClaim>> by_object_;
  std::vector<std::vector<ObjectClaim>> by_source_;
  std::vector<std::vector<ValueId>> domains_;
  std::vector<ValueId> truth_;
  std::vector<ObjectId> objects_with_truth_;
  FeatureSpace features_;
};

/// Mutable builder for Dataset. Typical use:
///
///   DatasetBuilder b("demo", /*num_sources=*/3, /*num_objects=*/2,
///                    /*num_values=*/2);
///   SLIMFAST_CHECK_OK(b.AddObservation(/*object=*/0, /*source=*/0, 1));
///   SLIMFAST_CHECK_OK(b.SetTruth(0, 1));
///   FeatureId f = b.mutable_features()->RegisterFeature("citations=high");
///   SLIMFAST_CHECK_OK(b.mutable_features()->SetFeature(0, f));
///   Dataset d = std::move(b).Build().ValueOrDie();
class DatasetBuilder {
 public:
  DatasetBuilder(std::string name, int32_t num_sources, int32_t num_objects,
                 int32_t num_values);

  /// Records that `source` claims `value` for `object`. Fails on invalid
  /// ids or on a duplicate (source, object) pair.
  Status AddObservation(ObjectId object, SourceId source, ValueId value);

  /// Declares the ground-truth value of `object`.
  Status SetTruth(ObjectId object, ValueId value);

  FeatureSpace* mutable_features() { return &features_; }

  int64_t num_observations() const {
    return static_cast<int64_t>(observations_.size());
  }

  /// Finalizes the dataset; validates that each labeled object's truth is
  /// self-consistent and builds the indexes. The builder is consumed.
  Result<Dataset> Build() &&;

 private:
  std::string name_;
  int32_t num_sources_;
  int32_t num_objects_;
  int32_t num_values_;
  std::vector<Observation> observations_;
  std::vector<ValueId> truth_;
  // Duplicate detection for (object, source) pairs.
  std::unordered_set<int64_t> seen_pairs_;
  FeatureSpace features_;
};

}  // namespace slimfast

#endif  // SLIMFAST_DATA_DATASET_H_
