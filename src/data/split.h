#ifndef SLIMFAST_DATA_SPLIT_H_
#define SLIMFAST_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"
#include "util/random.h"
#include "util/result.h"

namespace slimfast {

/// A train/test partition of the ground-truth-labeled objects of a dataset.
///
/// Experiments reveal the truth of `train_objects` to a fusion method (the
/// ground truth G of the paper) and measure object-value accuracy on
/// `test_objects`, mirroring the paper's evaluation methodology (Sec. 5.1).
struct TrainTestSplit {
  std::vector<ObjectId> train_objects;
  std::vector<ObjectId> test_objects;
  /// Per-object membership bitmap sized num_objects (1 = training).
  std::vector<uint8_t> is_train;

  bool IsTrain(ObjectId object) const {
    return is_train[static_cast<size_t>(object)] != 0;
  }
};

/// Randomly assigns a `train_fraction` of the labeled objects to training.
///
/// The split always contains at least one training object when
/// train_fraction > 0 and at least one test object when train_fraction < 1
/// (matching how the paper sweeps tiny fractions such as 0.1%). Fails if the
/// dataset has no labeled objects or the fraction is outside [0, 1].
Result<TrainTestSplit> MakeSplit(const Dataset& dataset,
                                 double train_fraction, Rng* rng);

/// Number of labeled source observations induced by a split: the total
/// count of claims made on training objects. This is the sample size |G|
/// entering the ERM bounds (each (s, o) pair on a labeled object is one
/// training example for the accuracy model).
int64_t CountLabeledObservations(const Dataset& dataset,
                                 const TrainTestSplit& split);

}  // namespace slimfast

#endif  // SLIMFAST_DATA_SPLIT_H_
