#ifndef SLIMFAST_DATA_FUSION_H_
#define SLIMFAST_DATA_FUSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "util/result.h"

namespace slimfast {

/// Output of a data fusion run: the traditional truth-discovery output
/// (estimated object values) plus the source-accuracy estimates, mirroring
/// Figure 1 of the paper.
struct FusionOutput {
  /// Estimated value per object (kNoValue for objects with no observations).
  std::vector<ValueId> predicted_values;
  /// Estimated accuracy per source, in [0, 1]. Methods without probabilistic
  /// semantics (e.g. CATD) leave this empty.
  std::vector<double> source_accuracies;
  /// Name of the method that produced this output.
  std::string method_name;
  /// Free-form detail such as the optimizer's chosen algorithm.
  std::string detail;
  /// Wall-clock seconds spent in learning and in inference (Tables 5/6).
  double learn_seconds = 0.0;
  double infer_seconds = 0.0;
  /// Wall-clock seconds for model compilation / setup.
  double compile_seconds = 0.0;

  double TotalSeconds() const {
    return compile_seconds + learn_seconds + infer_seconds;
  }
};

/// Common interface of all fusion methods (SLiMFast variants and baselines).
///
/// `split.train_objects` is the revealed ground truth G; methods must not
/// look at the truth of any other object. `seed` drives all stochasticity
/// so runs are reproducible.
class FusionMethod {
 public:
  virtual ~FusionMethod() = default;

  /// Stable display name ("SLiMFast", "ACCU", ...).
  virtual std::string name() const = 0;

  /// Runs fusion on `dataset` with training labels `split.train_objects`.
  virtual Result<FusionOutput> Run(const Dataset& dataset,
                                   const TrainTestSplit& split,
                                   uint64_t seed) = 0;
};

}  // namespace slimfast

#endif  // SLIMFAST_DATA_FUSION_H_
