#ifndef SLIMFAST_DATA_STATS_H_
#define SLIMFAST_DATA_STATS_H_

#include <string>

#include "data/dataset.h"

namespace slimfast {

/// Summary statistics of a fusion instance — the quantities reported in
/// Table 1 of the paper plus the instance properties that drive the
/// EM-vs-ERM tradeoff (density, average source accuracy).
struct DatasetStats {
  std::string name;
  int32_t num_sources = 0;
  int32_t num_objects = 0;
  int64_t num_observations = 0;
  int32_t num_feature_values = 0;     ///< distinct boolean features |K|
  int64_t active_feature_pairs = 0;   ///< Σ_s |features(s)|
  double truth_coverage = 0.0;        ///< fraction of objects with truth
  double density = 0.0;               ///< obs / (|S| * |O|), the paper's p
  double avg_obs_per_object = 0.0;
  double avg_obs_per_source = 0.0;
  double avg_domain_size = 0.0;       ///< mean |D_o| over observed objects
  /// Mean empirical source accuracy against ground truth, over sources with
  /// at least one labeled claim; NaN if no source qualifies (paper marks
  /// Genomics "-" for the same reason).
  double avg_source_accuracy = 0.0;
  bool avg_source_accuracy_reliable = false;

  /// Multi-line human-readable rendering (Table 1-style).
  std::string ToString() const;
};

/// Computes statistics for a dataset using all available ground truth.
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace slimfast

#endif  // SLIMFAST_DATA_STATS_H_
