#ifndef SLIMFAST_DATA_IO_H_
#define SLIMFAST_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace slimfast {

/// Persists a dataset as a directory of CSV files so that generated fusion
/// instances can be inspected, versioned, and re-loaded:
///
///   `<dir>/meta.csv`            name,num_sources,num_objects,num_values
///   `<dir>/observations.csv`    object,source,value
///   `<dir>/truth.csv`           object,value
///   `<dir>/features.csv`        feature_id,name
///   `<dir>/source_features.csv` source,feature_id
///
/// The directory must already exist.
Status SaveDataset(const Dataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset.
Result<Dataset> LoadDataset(const std::string& dir);

}  // namespace slimfast

#endif  // SLIMFAST_DATA_IO_H_
