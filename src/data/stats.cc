#include "data/stats.h"

#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace slimfast {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name();
  stats.num_sources = dataset.num_sources();
  stats.num_objects = dataset.num_objects();
  stats.num_observations = dataset.num_observations();
  stats.num_feature_values = dataset.features().num_features();
  stats.active_feature_pairs = dataset.features().TotalActiveFeatures();
  stats.truth_coverage =
      dataset.num_objects() > 0
          ? static_cast<double>(dataset.ObjectsWithTruth().size()) /
                static_cast<double>(dataset.num_objects())
          : 0.0;
  if (dataset.num_sources() > 0 && dataset.num_objects() > 0) {
    stats.density = static_cast<double>(dataset.num_observations()) /
                    (static_cast<double>(dataset.num_sources()) *
                     static_cast<double>(dataset.num_objects()));
  }
  if (dataset.num_objects() > 0) {
    stats.avg_obs_per_object =
        static_cast<double>(dataset.num_observations()) /
        static_cast<double>(dataset.num_objects());
  }
  if (dataset.num_sources() > 0) {
    stats.avg_obs_per_source =
        static_cast<double>(dataset.num_observations()) /
        static_cast<double>(dataset.num_sources());
  }

  int64_t observed_objects = 0;
  int64_t domain_total = 0;
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& domain = dataset.DomainOf(o);
    if (domain.empty()) continue;
    ++observed_objects;
    domain_total += static_cast<int64_t>(domain.size());
  }
  if (observed_objects > 0) {
    stats.avg_domain_size = static_cast<double>(domain_total) /
                            static_cast<double>(observed_objects);
  }

  double acc_sum = 0.0;
  int64_t acc_count = 0;
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    auto acc = dataset.EmpiricalSourceAccuracy(s);
    if (!acc.ok()) continue;
    acc_sum += acc.ValueOrDie();
    ++acc_count;
  }
  if (acc_count > 0) {
    stats.avg_source_accuracy = acc_sum / static_cast<double>(acc_count);
    // Mirror the paper: with around one observation per source (Genomics),
    // per-source accuracy estimates are meaningless.
    stats.avg_source_accuracy_reliable = stats.avg_obs_per_source >= 2.0;
  } else {
    stats.avg_source_accuracy = std::nan("");
    stats.avg_source_accuracy_reliable = false;
  }
  return stats;
}

std::string DatasetStats::ToString() const {
  std::ostringstream out;
  out << "Dataset: " << name << "\n"
      << "  # Sources:             " << num_sources << "\n"
      << "  # Objects:             " << num_objects << "\n"
      << "  # Observations:        " << num_observations << "\n"
      << "  # Feature values:      " << num_feature_values << "\n"
      << "  Active (s,k) pairs:    " << active_feature_pairs << "\n"
      << "  Truth coverage:        " << FormatDouble(truth_coverage * 100, 1)
      << "%\n"
      << "  Density p:             " << FormatDouble(density, 4) << "\n"
      << "  Avg obs per object:    " << FormatDouble(avg_obs_per_object, 2)
      << "\n"
      << "  Avg obs per source:    " << FormatDouble(avg_obs_per_source, 2)
      << "\n"
      << "  Avg domain size |D_o|: " << FormatDouble(avg_domain_size, 2)
      << "\n"
      << "  Avg source accuracy:   "
      << (avg_source_accuracy_reliable
              ? FormatDouble(avg_source_accuracy, 3)
              : std::string("- (unreliable)"))
      << "\n";
  return out.str();
}

}  // namespace slimfast
