#ifndef SLIMFAST_DATA_OBSERVATION_STORE_H_
#define SLIMFAST_DATA_OBSERVATION_STORE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/types.h"

namespace slimfast {

/// Half-open index range [begin, end) into the store's columnar arrays.
struct IndexRange {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Columnar (structure-of-arrays) view of a Dataset's observation multiset
/// Ω with CSR-style secondary indexes.
///
/// The canonical observation order sorts by object id, preserving the
/// dataset's insertion order within each object — exactly the order
/// Dataset::ClaimsOnObject walks, so iterating an object's range of the
/// columnar arrays visits the same claims in the same order as the dense
/// per-object vectors (this is what lets the sparse learning paths produce
/// bit-identical results to the legacy dense paths).
///
/// Three contiguous id arrays hold the observations (objects()[i],
/// sources()[i], values()[i] describe observation i); per-object and
/// per-source CSR offset arrays give O(1) range lookup without hashing or
/// pointer chasing. Domains and ground truth are flattened the same way.
/// The store is immutable after FromDataset and holds no reference to the
/// Dataset it was built from.
class ObservationStore {
 public:
  ObservationStore() = default;

  /// Builds the columnar store from `dataset` (one O(n) pass).
  static ObservationStore FromDataset(const Dataset& dataset);

  int32_t num_sources() const { return num_sources_; }
  int32_t num_objects() const { return num_objects_; }
  int32_t num_values() const { return num_values_; }
  int64_t num_observations() const {
    return static_cast<int64_t>(values_.size());
  }

  /// Columnar id arrays in canonical (by-object) order.
  const std::vector<ObjectId>& objects() const { return objects_; }
  const std::vector<SourceId>& sources() const { return sources_; }
  const std::vector<ValueId>& values() const { return values_; }

  /// Range of `object`'s observations in the columnar arrays; claims appear
  /// in dataset insertion order.
  IndexRange ObjectRange(ObjectId object) const {
    size_t o = static_cast<size_t>(object);
    return IndexRange{object_offsets_[o], object_offsets_[o + 1]};
  }

  /// Range of `source`'s observations in source_observations(); entries
  /// index into the columnar arrays, in canonical order.
  IndexRange SourceRange(SourceId source) const {
    size_t s = static_cast<size_t>(source);
    return IndexRange{source_offsets_[s], source_offsets_[s + 1]};
  }

  /// CSR payload of SourceRange: indices into the columnar arrays.
  const std::vector<int64_t>& source_observations() const {
    return source_observations_;
  }

  /// Range of `object`'s candidate domain in domain_values() (ascending,
  /// deduplicated — same contents as Dataset::DomainOf).
  IndexRange DomainRange(ObjectId object) const {
    size_t o = static_cast<size_t>(object);
    return IndexRange{domain_offsets_[o], domain_offsets_[o + 1]};
  }

  const std::vector<ValueId>& domain_values() const { return domain_values_; }

  /// Ground truth per object (kNoValue when unknown).
  const std::vector<ValueId>& truth() const { return truth_; }

  bool HasTruth(ObjectId object) const {
    return truth_[static_cast<size_t>(object)] != kNoValue;
  }

  /// Index of `value` within `object`'s domain range, or -1 if absent.
  int32_t DomainIndexOf(ObjectId object, ValueId value) const;

 private:
  int32_t num_sources_ = 0;
  int32_t num_objects_ = 0;
  int32_t num_values_ = 0;

  // Columnar observation arrays, canonical order (by object, insertion
  // order within object).
  std::vector<ObjectId> objects_;
  std::vector<SourceId> sources_;
  std::vector<ValueId> values_;

  // CSR offsets: object_offsets_[o] .. object_offsets_[o+1] is object o's
  // slice of the columnar arrays. Size num_objects + 1.
  std::vector<int64_t> object_offsets_;

  // CSR by source: source_offsets_ (size num_sources + 1) into
  // source_observations_, whose entries index the columnar arrays.
  std::vector<int64_t> source_offsets_;
  std::vector<int64_t> source_observations_;

  // Flattened candidate domains: domain_offsets_ (size num_objects + 1)
  // into domain_values_.
  std::vector<int64_t> domain_offsets_;
  std::vector<ValueId> domain_values_;

  std::vector<ValueId> truth_;
};

}  // namespace slimfast

#endif  // SLIMFAST_DATA_OBSERVATION_STORE_H_
