#ifndef SLIMFAST_DATA_OBSERVATION_STORE_H_
#define SLIMFAST_DATA_OBSERVATION_STORE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/types.h"
#include "util/result.h"

namespace slimfast {

/// Half-open index range [begin, end) into the store's columnar arrays.
struct IndexRange {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// A late-arriving ground-truth label: `object` is known to have `value`.
struct TruthLabel {
  ObjectId object;
  ValueId value;
  bool operator==(const TruthLabel&) const = default;
};

/// One increment of the incremental fusion engine: new observations and
/// ground-truth labels arriving after the initial dataset was compiled.
/// The id universe (source/object/value dictionaries) is fixed at session
/// start — a batch may only reference ids inside it, mirroring how
/// `DatasetBuilder` validates against its declared dimensions.
struct ObservationBatch {
  std::vector<Observation> observations;
  std::vector<TruthLabel> truths;

  bool empty() const { return observations.empty() && truths.empty(); }
  int64_t size() const {
    return static_cast<int64_t>(observations.size()) +
           static_cast<int64_t>(truths.size());
  }
};

/// Splits `dataset` into `num_chunks` replay batches: observations are cut
/// into contiguous runs of the dataset's arrival order (sizes differing by
/// at most one), and each labeled object's truth rides in the chunk that
/// carries the object's first observation (chunk 0 for labeled objects
/// that were never observed). Feeding the chunks to an incremental engine
/// in order reproduces the dataset exactly — the replay harness, the
/// delta-compilation equivalence tests, and the bench all chunk through
/// this one function. `num_chunks` is clamped to at least 1.
std::vector<ObservationBatch> ChunkDatasetForReplay(const Dataset& dataset,
                                                    int32_t num_chunks);

/// Columnar (structure-of-arrays) view of a Dataset's observation multiset
/// Ω with CSR-style secondary indexes.
///
/// The canonical observation order sorts by object id, preserving the
/// dataset's insertion order within each object — exactly the order
/// Dataset::ClaimsOnObject walks, so iterating an object's range of the
/// columnar arrays visits the same claims in the same order as the dense
/// per-object vectors (this is what lets the sparse learning paths produce
/// bit-identical results to the legacy dense paths).
///
/// Three contiguous id arrays hold the observations (objects()[i],
/// sources()[i], values()[i] describe observation i); per-object and
/// per-source CSR offset arrays give O(1) range lookup without hashing or
/// pointer chasing. Domains and ground truth are flattened the same way.
/// The store is immutable after construction and holds no reference to the
/// Dataset it was built from; growth happens by value through AppendBatch,
/// which returns a patched copy (the incremental-fusion ingest path).
class ObservationStore {
 public:
  ObservationStore() = default;

  /// Builds the columnar store from `dataset` (one O(n) pass).
  static ObservationStore FromDataset(const Dataset& dataset);

  /// The raw columnar content of a store — its serialization surface.
  /// Only the primary arrays travel: the by-source index and the
  /// flattened domains are pure functions of the claims and are rebuilt
  /// by FromColumns, so a snapshot cannot smuggle in an inconsistent
  /// derived index.
  struct Columns {
    int32_t num_sources = 0;
    int32_t num_objects = 0;
    int32_t num_values = 0;
    std::vector<ObjectId> objects;
    std::vector<SourceId> sources;
    std::vector<ValueId> values;
    std::vector<int64_t> object_offsets;
    std::vector<ValueId> truth;
    uint64_t fingerprint = 0;
  };

  /// Rebuilds a store from serialized columns (the snapshot bulk-load
  /// path). Validates the structure (offset shape, ids in range, the
  /// object column consistent with its offsets), rebuilds the derived
  /// by-source index and domains, then recomputes the content
  /// fingerprint from scratch and requires it to match
  /// `columns.fingerprint` — the end-to-end integrity oracle: a store
  /// loaded this way is bitwise equal to the one that was serialized,
  /// or the load fails.
  static Result<ObservationStore> FromColumns(Columns columns);

  /// Exports the primary columns (see Columns); the inverse of
  /// FromColumns up to bitwise store equality.
  Columns ToColumns() const;

  /// Returns a new store extended with `batch`: each object's new claims
  /// are spliced onto the end of its existing CSR range (preserving the
  /// canonical object-major, insertion-within-object order), the
  /// per-source index is recounted, touched domains are re-merged, and the
  /// content fingerprint is updated incrementally from the batch alone.
  /// The result is indistinguishable — array for array, bit for bit — from
  /// a store rebuilt from scratch over the concatenated observations
  /// (asserted in data_observation_store_test).
  ///
  /// Validation mirrors DatasetBuilder: ids must be inside the fixed
  /// dimensions, a (source, object) pair may claim at most once across the
  /// whole history, and a truth label may not contradict one already
  /// recorded (re-asserting the same truth is a no-op). On error the
  /// existing store is unchanged and no partial batch is applied.
  ///
  /// When `touched` is non-null it receives the ascending, deduplicated
  /// list of objects whose claims, domain, or truth changed — exactly the
  /// rows DeltaCompile must recompile.
  Result<ObservationStore> AppendBatch(
      const ObservationBatch& batch,
      std::vector<ObjectId>* touched = nullptr) const;

  /// Order-sensitive content fingerprint of the store: dimensions, every
  /// observation (keyed by its position within its object's range), and
  /// ground truth. Maintained incrementally by AppendBatch — per-item
  /// digests combine by wrapping addition, so absorbing a batch never
  /// re-reads existing items — and equal, by construction, to the
  /// fingerprint of a store rebuilt from scratch with the same content.
  uint64_t content_fingerprint() const { return fingerprint_; }

  int32_t num_sources() const { return num_sources_; }
  int32_t num_objects() const { return num_objects_; }
  int32_t num_values() const { return num_values_; }
  int64_t num_observations() const {
    return static_cast<int64_t>(values_.size());
  }

  /// Columnar id arrays in canonical (by-object) order.
  const std::vector<ObjectId>& objects() const { return objects_; }
  const std::vector<SourceId>& sources() const { return sources_; }
  const std::vector<ValueId>& values() const { return values_; }

  /// Per-object CSR offsets into the columnar arrays (size
  /// num_objects + 1); ObjectRange is the per-object view.
  const std::vector<int64_t>& object_offsets() const {
    return object_offsets_;
  }

  /// Range of `object`'s observations in the columnar arrays; claims appear
  /// in dataset insertion order.
  IndexRange ObjectRange(ObjectId object) const {
    size_t o = static_cast<size_t>(object);
    return IndexRange{object_offsets_[o], object_offsets_[o + 1]};
  }

  /// Range of `source`'s observations in source_observations(); entries
  /// index into the columnar arrays, in canonical order.
  IndexRange SourceRange(SourceId source) const {
    size_t s = static_cast<size_t>(source);
    return IndexRange{source_offsets_[s], source_offsets_[s + 1]};
  }

  /// CSR payload of SourceRange: indices into the columnar arrays.
  const std::vector<int64_t>& source_observations() const {
    return source_observations_;
  }

  /// Range of `object`'s candidate domain in domain_values() (ascending,
  /// deduplicated — same contents as Dataset::DomainOf).
  IndexRange DomainRange(ObjectId object) const {
    size_t o = static_cast<size_t>(object);
    return IndexRange{domain_offsets_[o], domain_offsets_[o + 1]};
  }

  const std::vector<ValueId>& domain_values() const { return domain_values_; }

  /// Ground truth per object (kNoValue when unknown).
  const std::vector<ValueId>& truth() const { return truth_; }

  bool HasTruth(ObjectId object) const {
    return truth_[static_cast<size_t>(object)] != kNoValue;
  }

  /// Index of `value` within `object`'s domain range, or -1 if absent.
  int32_t DomainIndexOf(ObjectId object, ValueId value) const;

  /// Structural equality over every columnar array, index, and the
  /// fingerprint — the "bitwise equal" check the delta-maintenance tests
  /// and bench assertions rely on.
  bool operator==(const ObservationStore&) const = default;

 private:
  /// Rebuilds the by-source CSR index (counting sort over the canonical
  /// arrays). Shared by FromDataset and AppendBatch.
  void BuildSourceIndex();
  int32_t num_sources_ = 0;
  int32_t num_objects_ = 0;
  int32_t num_values_ = 0;

  // Columnar observation arrays, canonical order (by object, insertion
  // order within object).
  std::vector<ObjectId> objects_;
  std::vector<SourceId> sources_;
  std::vector<ValueId> values_;

  // CSR offsets: object_offsets_[o] .. object_offsets_[o+1] is object o's
  // slice of the columnar arrays. Size num_objects + 1.
  std::vector<int64_t> object_offsets_;

  // CSR by source: source_offsets_ (size num_sources + 1) into
  // source_observations_, whose entries index the columnar arrays.
  std::vector<int64_t> source_offsets_;
  std::vector<int64_t> source_observations_;

  // Flattened candidate domains: domain_offsets_ (size num_objects + 1)
  // into domain_values_.
  std::vector<int64_t> domain_offsets_;
  std::vector<ValueId> domain_values_;

  std::vector<ValueId> truth_;

  // Incrementally maintained content fingerprint (see
  // content_fingerprint()).
  uint64_t fingerprint_ = 0;
};

}  // namespace slimfast

#endif  // SLIMFAST_DATA_OBSERVATION_STORE_H_
