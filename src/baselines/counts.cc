#include "baselines/counts.h"

#include <cmath>
#include <vector>

#include "util/math.h"
#include "util/stopwatch.h"

namespace slimfast {

Result<FusionOutput> Counts::Run(const Dataset& dataset,
                                 const TrainTestSplit& split,
                                 uint64_t seed) {
  (void)seed;
  Stopwatch learn_watch;
  FusionOutput output;
  output.method_name = name();

  // Supervised accuracy estimation from the revealed training labels.
  std::vector<int64_t> labeled(static_cast<size_t>(dataset.num_sources()), 0);
  std::vector<int64_t> correct(static_cast<size_t>(dataset.num_sources()), 0);
  for (ObjectId o : split.train_objects) {
    if (!dataset.HasTruth(o)) continue;
    ValueId truth = dataset.Truth(o);
    for (const SourceClaim& claim : dataset.ClaimsOnObject(o)) {
      ++labeled[static_cast<size_t>(claim.source)];
      if (claim.value == truth) ++correct[static_cast<size_t>(claim.source)];
    }
  }
  output.source_accuracies.assign(
      static_cast<size_t>(dataset.num_sources()), options_.default_accuracy);
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    size_t si = static_cast<size_t>(s);
    if (labeled[si] == 0) continue;
    output.source_accuracies[si] =
        (static_cast<double>(correct[si]) + options_.smoothing) /
        (static_cast<double>(labeled[si]) + 2.0 * options_.smoothing);
  }
  output.learn_seconds = learn_watch.ElapsedSeconds();

  // Naive Bayes inference.
  Stopwatch infer_watch;
  output.predicted_values.assign(static_cast<size_t>(dataset.num_objects()),
                                 kNoValue);
  std::vector<double> scores;
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& domain = dataset.DomainOf(o);
    if (domain.empty()) continue;
    const auto& claims = dataset.ClaimsOnObject(o);
    scores.assign(domain.size(), 0.0);
    double wrong_spread =
        domain.size() > 1 ? static_cast<double>(domain.size() - 1) : 1.0;
    for (size_t di = 0; di < domain.size(); ++di) {
      for (const SourceClaim& claim : claims) {
        double a = Clamp(
            output.source_accuracies[static_cast<size_t>(claim.source)],
            1e-6, 1.0 - 1e-6);
        scores[di] += claim.value == domain[di]
                          ? std::log(a)
                          : std::log((1.0 - a) / wrong_spread);
      }
    }
    size_t best = 0;
    for (size_t di = 1; di < domain.size(); ++di) {
      if (scores[di] > scores[best]) best = di;
    }
    output.predicted_values[static_cast<size_t>(o)] = domain[best];
  }
  output.infer_seconds = infer_watch.ElapsedSeconds();
  return output;
}

}  // namespace slimfast
