#include "baselines/sstf.h"

#include <cmath>
#include <vector>

#include "util/math.h"
#include "util/stopwatch.h"

namespace slimfast {

Result<FusionOutput> Sstf::Run(const Dataset& dataset,
                               const TrainTestSplit& split, uint64_t seed) {
  (void)seed;
  Stopwatch learn_watch;
  FusionOutput output;
  output.method_name = name();

  const size_t num_objects = static_cast<size_t>(dataset.num_objects());
  const size_t num_sources = static_cast<size_t>(dataset.num_sources());

  // Fact confidences, aligned to DomainOf(o).
  std::vector<std::vector<double>> confidence(num_objects);
  std::vector<uint8_t> clamped(num_objects, 0);
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& domain = dataset.DomainOf(o);
    auto& conf = confidence[static_cast<size_t>(o)];
    conf.assign(domain.size(), 0.5);
    if (split.IsTrain(o) && dataset.HasTruth(o)) {
      clamped[static_cast<size_t>(o)] = 1;
      for (size_t di = 0; di < domain.size(); ++di) {
        conf[di] = domain[di] == dataset.Truth(o) ? 1.0 : 0.0;
      }
    }
  }

  std::vector<double> trust(num_sources, options_.init_trust);
  std::vector<double> sigma;
  for (int32_t iter = 0; iter < options_.max_iterations; ++iter) {
    // --- Source trust: mean confidence of claimed facts. ---
    double max_delta = 0.0;
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      const auto& claims = dataset.ClaimsBySource(s);
      if (claims.empty()) continue;
      double sum = 0.0;
      for (const ObjectClaim& claim : claims) {
        const auto& domain = dataset.DomainOf(claim.object);
        const auto& conf = confidence[static_cast<size_t>(claim.object)];
        for (size_t di = 0; di < domain.size(); ++di) {
          if (domain[di] == claim.value) {
            sum += conf[di];
            break;
          }
        }
      }
      double updated = Clamp(sum / static_cast<double>(claims.size()),
                             1e-4, 1.0 - 1e-4);
      max_delta = std::max(
          max_delta, std::fabs(updated - trust[static_cast<size_t>(s)]));
      trust[static_cast<size_t>(s)] = updated;
    }

    // --- Fact confidence: squashed trust-score mass, centered per object.
    for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
      size_t oi = static_cast<size_t>(o);
      if (clamped[oi]) continue;
      const auto& domain = dataset.DomainOf(o);
      if (domain.empty()) continue;
      const auto& claims = dataset.ClaimsOnObject(o);
      sigma.assign(domain.size(), 0.0);
      for (size_t di = 0; di < domain.size(); ++di) {
        for (const SourceClaim& claim : claims) {
          if (claim.value == domain[di]) {
            sigma[di] += -std::log(
                1.0 - trust[static_cast<size_t>(claim.source)]);
          }
        }
      }
      double mean_sigma = Mean(sigma);
      for (size_t di = 0; di < domain.size(); ++di) {
        confidence[oi][di] =
            Sigmoid(options_.gamma * (sigma[di] - mean_sigma));
      }
    }
    if (max_delta < options_.tolerance) break;
  }
  output.learn_seconds = learn_watch.ElapsedSeconds();

  Stopwatch infer_watch;
  output.predicted_values.assign(num_objects, kNoValue);
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& domain = dataset.DomainOf(o);
    if (domain.empty()) continue;
    const auto& conf = confidence[static_cast<size_t>(o)];
    size_t best = 0;
    for (size_t di = 1; di < domain.size(); ++di) {
      if (conf[di] > conf[best]) best = di;
    }
    output.predicted_values[static_cast<size_t>(o)] = domain[best];
  }
  // SSTF does not estimate probabilistic source accuracies (Sec. 5.2.2's
  // omitted-comparison note); its trust scores are internal.
  output.source_accuracies.clear();
  output.infer_seconds = infer_watch.ElapsedSeconds();
  return output;
}

}  // namespace slimfast
