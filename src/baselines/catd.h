#ifndef SLIMFAST_BASELINES_CATD_H_
#define SLIMFAST_BASELINES_CATD_H_

#include <string>

#include "data/fusion.h"

namespace slimfast {

/// Options for the CATD baseline.
struct CatdOptions {
  /// Significance level of the chi-squared confidence interval (the CATD
  /// paper uses alpha = 0.05).
  double alpha = 0.05;
  int32_t max_iterations = 50;
  /// Convergence threshold on the fraction of truth estimates that change.
  double tolerance = 0.0;
};

/// CATD — confidence-aware truth discovery of Li et al. [22].
///
/// Iterative optimization (not probabilistic): each source gets the
/// reliability weight
///   w_s = chi2_quantile(alpha / 2, n_s) / Σ_{claims} error(s, o)
/// whose chi-squared numerator shrinks the weight of long-tail sources
/// with few claims; truths are re-estimated by weighted voting. Revealed
/// ground truth initializes and clamps the truth estimates (the
/// ground-truth-aware variant the paper compares against). Following the
/// paper's Table 3 note, CATD reports normalized reliability weights
/// rather than probabilistic accuracies — source_accuracies is left empty.
class Catd : public FusionMethod {
 public:
  explicit Catd(CatdOptions options = {}) : options_(options) {}

  std::string name() const override { return "CATD"; }

  Result<FusionOutput> Run(const Dataset& dataset,
                           const TrainTestSplit& split,
                           uint64_t seed) override;

 private:
  CatdOptions options_;
};

}  // namespace slimfast

#endif  // SLIMFAST_BASELINES_CATD_H_
