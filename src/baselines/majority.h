#ifndef SLIMFAST_BASELINES_MAJORITY_H_
#define SLIMFAST_BASELINES_MAJORITY_H_

#include <string>

#include "data/fusion.h"

namespace slimfast {

/// Unweighted majority vote — the simplest fusion strategy (Sec. 2).
///
/// Every object takes its most frequently claimed value (smallest value id
/// on ties). Source accuracies are reported as each source's agreement
/// rate with the majority outcome, the natural non-probabilistic proxy.
class MajorityVote : public FusionMethod {
 public:
  std::string name() const override { return "MajorityVote"; }

  Result<FusionOutput> Run(const Dataset& dataset,
                           const TrainTestSplit& split,
                           uint64_t seed) override;
};

}  // namespace slimfast

#endif  // SLIMFAST_BASELINES_MAJORITY_H_
