#include "baselines/registry.h"

#include "baselines/accu.h"
#include "baselines/catd.h"
#include "baselines/counts.h"
#include "baselines/majority.h"
#include "baselines/sstf.h"
#include "baselines/truthfinder.h"
#include "core/slimfast.h"

namespace slimfast {

std::vector<std::unique_ptr<FusionMethod>> MakeTable2Methods() {
  std::vector<std::unique_ptr<FusionMethod>> methods;
  methods.push_back(MakeSlimFast());
  methods.push_back(MakeSourcesErm());
  methods.push_back(MakeSourcesEm());
  methods.push_back(std::make_unique<Counts>());
  methods.push_back(std::make_unique<Accu>());
  methods.push_back(std::make_unique<Catd>());
  methods.push_back(std::make_unique<Sstf>());
  return methods;
}

std::vector<std::unique_ptr<FusionMethod>> MakeTable3Methods() {
  std::vector<std::unique_ptr<FusionMethod>> methods;
  methods.push_back(MakeSlimFast());
  methods.push_back(MakeSourcesErm());
  methods.push_back(MakeSourcesEm());
  methods.push_back(std::make_unique<Counts>());
  methods.push_back(std::make_unique<Accu>());
  return methods;
}

Result<std::unique_ptr<FusionMethod>> MakeMethodByName(
    const std::string& name) {
  return MakeMethodByName(name, SlimFastOptions{});
}

Result<std::unique_ptr<FusionMethod>> MakeMethodByName(
    const std::string& name, const SlimFastOptions& options) {
  if (name == "SLiMFast") return {MakeSlimFast(options)};
  if (name == "SLiMFast-ERM") return {MakeSlimFastErm(options)};
  if (name == "SLiMFast-EM") return {MakeSlimFastEm(options)};
  if (name == "Sources-ERM") return {MakeSourcesErm(options)};
  if (name == "Sources-EM") return {MakeSourcesEm(options)};
  if (name == "MajorityVote") {
    return {std::make_unique<MajorityVote>()};
  }
  if (name == "Counts") return {std::make_unique<Counts>()};
  if (name == "ACCU") return {std::make_unique<Accu>()};
  if (name == "CATD") return {std::make_unique<Catd>()};
  if (name == "SSTF") return {std::make_unique<Sstf>()};
  if (name == "TruthFinder") return {std::make_unique<TruthFinder>()};
  return Status::NotFound("no fusion method named '" + name + "'");
}

}  // namespace slimfast
