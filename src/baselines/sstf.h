#ifndef SLIMFAST_BASELINES_SSTF_H_
#define SLIMFAST_BASELINES_SSTF_H_

#include <string>

#include "data/fusion.h"

namespace slimfast {

/// Options for the SSTF baseline.
struct SstfOptions {
  int32_t max_iterations = 30;
  /// Damping of the fact-confidence logistic squash.
  double gamma = 0.5;
  /// Initial source trustworthiness.
  double init_trust = 0.7;
  /// Convergence threshold on the max trust change.
  double tolerance = 1e-4;
};

/// SSTF — semi-supervised truth finding (Yin & Tan [40]).
///
/// Graph-based propagation over the bipartite source/fact graph: facts are
/// (object, value) pairs with confidence scores, sources have
/// trustworthiness equal to the mean confidence of their claimed facts,
/// and fact confidence is the squashed sum of claiming sources' trust
/// scores (−ln(1 − t)), penalized by the mass of conflicting facts on the
/// same object. Labeled facts are clamped to confidence 1 (the true value)
/// and 0 (every other claimed value); their information propagates to
/// unlabeled objects through shared sources.
class Sstf : public FusionMethod {
 public:
  explicit Sstf(SstfOptions options = {}) : options_(options) {}

  std::string name() const override { return "SSTF"; }

  Result<FusionOutput> Run(const Dataset& dataset,
                           const TrainTestSplit& split,
                           uint64_t seed) override;

 private:
  SstfOptions options_;
};

}  // namespace slimfast

#endif  // SLIMFAST_BASELINES_SSTF_H_
