#ifndef SLIMFAST_BASELINES_TRUTHFINDER_H_
#define SLIMFAST_BASELINES_TRUTHFINDER_H_

#include <string>

#include "data/fusion.h"

namespace slimfast {

/// Options for the TruthFinder baseline.
struct TruthFinderOptions {
  int32_t max_iterations = 30;
  /// Dampening factor of the confidence squash (0.3 in the original paper).
  double gamma = 0.3;
  /// Weight of the conflicting-fact penalty (rho in the original paper).
  double rho = 0.5;
  double init_trust = 0.9;
  double tolerance = 1e-4;
};

/// TruthFinder — the iterative fusion model of Yin et al. [39], included as
/// the unsupervised representative of the "iterative" method family.
///
/// Alternates between source trustworthiness (mean confidence of claimed
/// facts) and fact confidence (1 - Π (1 - t_s) over claiming sources,
/// dampened and penalized by conflicting facts on the same object).
/// Ground truth, when revealed, is clamped the same way as in SSTF.
class TruthFinder : public FusionMethod {
 public:
  explicit TruthFinder(TruthFinderOptions options = {}) : options_(options) {}

  std::string name() const override { return "TruthFinder"; }

  Result<FusionOutput> Run(const Dataset& dataset,
                           const TrainTestSplit& split,
                           uint64_t seed) override;

 private:
  TruthFinderOptions options_;
};

}  // namespace slimfast

#endif  // SLIMFAST_BASELINES_TRUTHFINDER_H_
