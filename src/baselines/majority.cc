#include "baselines/majority.h"

#include <unordered_map>

#include "util/stopwatch.h"

namespace slimfast {

Result<FusionOutput> MajorityVote::Run(const Dataset& dataset,
                                       const TrainTestSplit& split,
                                       uint64_t seed) {
  (void)split;
  (void)seed;
  Stopwatch watch;
  FusionOutput output;
  output.method_name = name();
  output.predicted_values.assign(static_cast<size_t>(dataset.num_objects()),
                                 kNoValue);

  std::unordered_map<ValueId, int64_t> counts;
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& claims = dataset.ClaimsOnObject(o);
    if (claims.empty()) continue;
    counts.clear();
    for (const SourceClaim& claim : claims) ++counts[claim.value];
    ValueId best = kNoValue;
    int64_t best_count = -1;
    for (const auto& [value, count] : counts) {
      if (count > best_count || (count == best_count && value < best)) {
        best = value;
        best_count = count;
      }
    }
    output.predicted_values[static_cast<size_t>(o)] = best;
  }

  output.source_accuracies.assign(
      static_cast<size_t>(dataset.num_sources()), 0.5);
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    const auto& claims = dataset.ClaimsBySource(s);
    if (claims.empty()) continue;
    int64_t agree = 0;
    for (const ObjectClaim& claim : claims) {
      if (output.predicted_values[static_cast<size_t>(claim.object)] ==
          claim.value) {
        ++agree;
      }
    }
    output.source_accuracies[static_cast<size_t>(s)] =
        static_cast<double>(agree) / static_cast<double>(claims.size());
  }
  output.infer_seconds = watch.ElapsedSeconds();
  return output;
}

}  // namespace slimfast
