#ifndef SLIMFAST_BASELINES_ACCU_H_
#define SLIMFAST_BASELINES_ACCU_H_

#include <string>

#include "data/fusion.h"

namespace slimfast {

/// Options for the ACCU baseline.
struct AccuOptions {
  /// Initial accuracy for sources without labeled claims.
  double init_accuracy = 0.8;
  int32_t max_iterations = 50;
  /// Convergence threshold on the max absolute accuracy change.
  double tolerance = 1e-4;
  /// Accuracy estimates are clamped into [eps, 1 - eps].
  double clamp_eps = 1e-3;
};

/// ACCU — the Bayesian fusion model of Dong et al. [9] without source
/// copying, as configured in Sec. 5.1.
///
/// Iterates between (a) Bayesian truth inference, where a source claiming
/// value v contributes vote ln(n · A_s / (1 - A_s)) with n = |D_o| - 1
/// false values assumed uniform, and (b) accuracy re-estimation, where
/// A_s is the mean posterior probability of the values the source claims.
/// Revealed ground truth initializes the accuracies (as suggested in [9])
/// and stays clamped as evidence during the iterations.
class Accu : public FusionMethod {
 public:
  explicit Accu(AccuOptions options = {}) : options_(options) {}

  std::string name() const override { return "ACCU"; }

  Result<FusionOutput> Run(const Dataset& dataset,
                           const TrainTestSplit& split,
                           uint64_t seed) override;

 private:
  AccuOptions options_;
};

}  // namespace slimfast

#endif  // SLIMFAST_BASELINES_ACCU_H_
