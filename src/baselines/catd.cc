#include "baselines/catd.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/math.h"
#include "util/stopwatch.h"

namespace slimfast {

Result<FusionOutput> Catd::Run(const Dataset& dataset,
                               const TrainTestSplit& split, uint64_t seed) {
  (void)seed;
  Stopwatch learn_watch;
  FusionOutput output;
  output.method_name = name();

  const size_t num_objects = static_cast<size_t>(dataset.num_objects());
  const size_t num_sources = static_cast<size_t>(dataset.num_sources());

  // Truth estimates: initialize with majority vote; clamp training labels.
  std::vector<ValueId> truth_est(num_objects, kNoValue);
  {
    std::unordered_map<ValueId, int64_t> counts;
    for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
      const auto& claims = dataset.ClaimsOnObject(o);
      if (claims.empty()) continue;
      if (split.IsTrain(o) && dataset.HasTruth(o)) {
        truth_est[static_cast<size_t>(o)] = dataset.Truth(o);
        continue;
      }
      counts.clear();
      for (const SourceClaim& claim : claims) ++counts[claim.value];
      ValueId best = kNoValue;
      int64_t best_count = -1;
      for (const auto& [value, count] : counts) {
        if (count > best_count || (count == best_count && value < best)) {
          best = value;
          best_count = count;
        }
      }
      truth_est[static_cast<size_t>(o)] = best;
    }
  }

  std::vector<double> weight(num_sources, 1.0);
  std::vector<double> vote;
  for (int32_t iter = 0; iter < options_.max_iterations; ++iter) {
    // --- Weight update: chi-squared-shrunk inverse error. ---
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      const auto& claims = dataset.ClaimsBySource(s);
      if (claims.empty()) {
        weight[static_cast<size_t>(s)] = 0.0;
        continue;
      }
      double error_sum = 0.0;
      for (const ObjectClaim& claim : claims) {
        if (truth_est[static_cast<size_t>(claim.object)] != claim.value) {
          error_sum += 1.0;
        }
      }
      // 0.5 pseudo-error keeps perfect sources finite (standard CATD
      // smoothing for categorical data).
      error_sum = std::max(error_sum, 0.5);
      double chi = ChiSquaredQuantile(
          options_.alpha / 2.0, static_cast<double>(claims.size()));
      weight[static_cast<size_t>(s)] = chi / error_sum;
    }

    // --- Truth update: weighted vote per object. ---
    int64_t changed = 0;
    int64_t considered = 0;
    for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
      const auto& domain = dataset.DomainOf(o);
      if (domain.empty()) continue;
      if (split.IsTrain(o) && dataset.HasTruth(o)) continue;  // clamped
      const auto& claims = dataset.ClaimsOnObject(o);
      vote.assign(domain.size(), 0.0);
      for (size_t di = 0; di < domain.size(); ++di) {
        for (const SourceClaim& claim : claims) {
          if (claim.value == domain[di]) {
            vote[di] += weight[static_cast<size_t>(claim.source)];
          }
        }
      }
      size_t best = 0;
      for (size_t di = 1; di < domain.size(); ++di) {
        if (vote[di] > vote[best]) best = di;
      }
      ++considered;
      size_t oi = static_cast<size_t>(o);
      if (truth_est[oi] != domain[best]) {
        truth_est[oi] = domain[best];
        ++changed;
      }
    }
    if (considered == 0 ||
        static_cast<double>(changed) / static_cast<double>(considered) <=
            options_.tolerance) {
      break;
    }
  }
  output.learn_seconds = learn_watch.ElapsedSeconds();
  output.predicted_values = std::move(truth_est);
  // CATD's weights are not probabilistic accuracies; per the paper's
  // Table 3 note, no accuracy estimates are reported.
  output.source_accuracies.clear();
  return output;
}

}  // namespace slimfast
