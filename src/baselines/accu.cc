#include "baselines/accu.h"

#include <cmath>
#include <vector>

#include "util/math.h"
#include "util/stopwatch.h"

namespace slimfast {

Result<FusionOutput> Accu::Run(const Dataset& dataset,
                               const TrainTestSplit& split, uint64_t seed) {
  (void)seed;
  Stopwatch learn_watch;
  FusionOutput output;
  output.method_name = name();

  const size_t num_sources = static_cast<size_t>(dataset.num_sources());
  std::vector<double> accuracy(num_sources, options_.init_accuracy);

  // Initialize accuracies from revealed ground truth where available.
  {
    std::vector<int64_t> labeled(num_sources, 0);
    std::vector<int64_t> correct(num_sources, 0);
    for (ObjectId o : split.train_objects) {
      if (!dataset.HasTruth(o)) continue;
      ValueId truth = dataset.Truth(o);
      for (const SourceClaim& claim : dataset.ClaimsOnObject(o)) {
        ++labeled[static_cast<size_t>(claim.source)];
        if (claim.value == truth) {
          ++correct[static_cast<size_t>(claim.source)];
        }
      }
    }
    for (size_t s = 0; s < num_sources; ++s) {
      if (labeled[s] > 0) {
        accuracy[s] = (static_cast<double>(correct[s]) + 1.0) /
                      (static_cast<double>(labeled[s]) + 2.0);
      }
    }
  }

  // posterior[o] aligned to DomainOf(o).
  std::vector<std::vector<double>> posterior(
      static_cast<size_t>(dataset.num_objects()));
  std::vector<double> scores;

  auto infer_truth = [&]() {
    for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
      const auto& domain = dataset.DomainOf(o);
      auto& post = posterior[static_cast<size_t>(o)];
      if (domain.empty()) {
        post.clear();
        continue;
      }
      // Ground-truth evidence stays clamped.
      if (split.IsTrain(o) && dataset.HasTruth(o)) {
        post.assign(domain.size(), 0.0);
        for (size_t di = 0; di < domain.size(); ++di) {
          if (domain[di] == dataset.Truth(o)) post[di] = 1.0;
        }
        continue;
      }
      const auto& claims = dataset.ClaimsOnObject(o);
      double n = domain.size() > 1 ? static_cast<double>(domain.size() - 1)
                                   : 1.0;
      scores.assign(domain.size(), 0.0);
      for (size_t di = 0; di < domain.size(); ++di) {
        for (const SourceClaim& claim : claims) {
          if (claim.value != domain[di]) continue;
          double a = Clamp(accuracy[static_cast<size_t>(claim.source)],
                           options_.clamp_eps, 1.0 - options_.clamp_eps);
          scores[di] += std::log(n * a / (1.0 - a));
        }
      }
      SoftmaxInPlace(&scores);
      post = scores;
    }
  };

  for (int32_t iter = 0; iter < options_.max_iterations; ++iter) {
    infer_truth();
    // Accuracy update: mean posterior mass of the source's claimed values.
    double max_delta = 0.0;
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      const auto& claims = dataset.ClaimsBySource(s);
      if (claims.empty()) continue;
      double sum = 0.0;
      for (const ObjectClaim& claim : claims) {
        const auto& domain = dataset.DomainOf(claim.object);
        const auto& post = posterior[static_cast<size_t>(claim.object)];
        for (size_t di = 0; di < domain.size(); ++di) {
          if (domain[di] == claim.value) {
            sum += post[di];
            break;
          }
        }
      }
      double updated = Clamp(sum / static_cast<double>(claims.size()),
                             options_.clamp_eps, 1.0 - options_.clamp_eps);
      max_delta =
          std::max(max_delta, std::fabs(updated - accuracy[static_cast<size_t>(s)]));
      accuracy[static_cast<size_t>(s)] = updated;
    }
    if (max_delta < options_.tolerance) break;
  }
  output.learn_seconds = learn_watch.ElapsedSeconds();

  Stopwatch infer_watch;
  infer_truth();
  output.predicted_values.assign(static_cast<size_t>(dataset.num_objects()),
                                 kNoValue);
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    const auto& domain = dataset.DomainOf(o);
    if (domain.empty()) continue;
    const auto& post = posterior[static_cast<size_t>(o)];
    size_t best = 0;
    for (size_t di = 1; di < domain.size(); ++di) {
      if (post[di] > post[best]) best = di;
    }
    output.predicted_values[static_cast<size_t>(o)] = domain[best];
  }
  output.source_accuracies = std::move(accuracy);
  output.infer_seconds = infer_watch.ElapsedSeconds();
  return output;
}

}  // namespace slimfast
