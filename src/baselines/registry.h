#ifndef SLIMFAST_BASELINES_REGISTRY_H_
#define SLIMFAST_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "data/fusion.h"

namespace slimfast {

/// Builds the full method lineup of Table 2: SLiMFast (optimizer),
/// Sources-ERM, Sources-EM, Counts, ACCU, CATD, SSTF.
std::vector<std::unique_ptr<FusionMethod>> MakeTable2Methods();

/// The probabilistic subset compared in Table 3: SLiMFast, Sources-ERM,
/// Sources-EM, Counts, ACCU.
std::vector<std::unique_ptr<FusionMethod>> MakeTable3Methods();

/// Constructs one method by display name ("SLiMFast", "SLiMFast-ERM",
/// "SLiMFast-EM", "Sources-ERM", "Sources-EM", "MajorityVote", "Counts",
/// "ACCU", "CATD", "SSTF", "TruthFinder"); NotFound for anything else.
Result<std::unique_ptr<FusionMethod>> MakeMethodByName(
    const std::string& name);

/// Same, but the SLiMFast variants are built on `options` (thread count,
/// inference engine, ...). Baselines have no options and ignore it.
Result<std::unique_ptr<FusionMethod>> MakeMethodByName(
    const std::string& name, const SlimFastOptions& options);

}  // namespace slimfast

#endif  // SLIMFAST_BASELINES_REGISTRY_H_
