#ifndef SLIMFAST_BASELINES_COUNTS_H_
#define SLIMFAST_BASELINES_COUNTS_H_

#include <string>

#include "data/fusion.h"

namespace slimfast {

/// Options for the Counts baseline.
struct CountsOptions {
  /// Laplace smoothing pseudo-counts for the empirical accuracy estimate:
  /// A_s = (correct + alpha) / (labeled + 2 * alpha).
  double smoothing = 1.0;
  /// Accuracy assigned to sources with no claims on labeled objects.
  double default_accuracy = 0.5;
};

/// "Counts" baseline of Sec. 5.1 — Naive Bayes with supervised accuracies.
///
/// Source accuracies are the (smoothed) fraction of each source's claims
/// on training objects that are correct; truth is inferred with Naive
/// Bayes under conditional independence: claiming sources vote
/// log(A_s) for their value and log((1 - A_s) / (|D_o| - 1)) against the
/// others (wrong values assumed uniform).
class Counts : public FusionMethod {
 public:
  explicit Counts(CountsOptions options = {}) : options_(options) {}

  std::string name() const override { return "Counts"; }

  Result<FusionOutput> Run(const Dataset& dataset,
                           const TrainTestSplit& split,
                           uint64_t seed) override;

 private:
  CountsOptions options_;
};

}  // namespace slimfast

#endif  // SLIMFAST_BASELINES_COUNTS_H_
