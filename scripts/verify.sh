#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full ctest suite.
# This is the exact command CI runs on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
