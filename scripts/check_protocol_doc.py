#!/usr/bin/env python3
"""Keeps docs/PROTOCOL.md in lockstep with the line-protocol code.

docs/PROTOCOL.md is the serve protocol's reference, and its verb table
is the part clients code against — so CI treats it as a contract:
the set of verbs in the table must match, exactly, the set of verbs
src/serve/line_protocol.cc actually dispatches on. A verb handled in
code but missing from the table is an undocumented verb; a verb in the
table with no handler is documentation for a command the server would
reject. Either direction fails the build.

Extraction is deliberately dumb and format-anchored:
  - doc side: rows of the markdown table whose first cell is an
    all-caps token (`| OBS | ... |`),
  - code side: the `command == "VERB"` comparisons of
    LineProtocol::HandleLineInner, plus QUIT-style verbs matched the
    same way.
If either anchor pattern stops matching anything, that is itself an
error — the checker refuses to pass vacuously.

Usage: check_protocol_doc.py [--doc docs/PROTOCOL.md]
                             [--source src/serve/line_protocol.cc]
"""

import argparse
import re
import sys

DOC_ROW = re.compile(r"^\|\s*([A-Z]+)\s*\|")
CODE_VERB = re.compile(r'command == "([A-Z]+)"')


def fail(message):
    print("check_protocol_doc: FAIL: %s" % message)
    sys.exit(1)


def doc_verbs(path):
    verbs = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            match = DOC_ROW.match(line.strip())
            if match:
                verbs.append(match.group(1))
    return verbs


def code_verbs(path):
    with open(path, encoding="utf-8") as f:
        return CODE_VERB.findall(f.read())


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--doc", default="docs/PROTOCOL.md")
    parser.add_argument("--source", default="src/serve/line_protocol.cc")
    args = parser.parse_args()

    documented = doc_verbs(args.doc)
    handled = code_verbs(args.source)

    if not documented:
        fail("no verb-table rows found in %s (anchor pattern '| VERB |' "
             "matched nothing — was the table reformatted?)" % args.doc)
    if not handled:
        fail("no 'command == \"VERB\"' comparisons found in %s — was the "
             "dispatcher refactored?" % args.source)

    dup = sorted({v for v in documented if documented.count(v) > 1})
    if dup:
        fail("duplicate verb rows in %s: %s" % (args.doc, " ".join(dup)))

    undocumented = sorted(set(handled) - set(documented))
    if undocumented:
        fail("verb(s) handled in %s but undocumented in %s: %s"
             % (args.source, args.doc, " ".join(undocumented)))

    phantom = sorted(set(documented) - set(handled))
    if phantom:
        fail("verb(s) documented in %s but not handled in %s: %s"
             % (args.doc, args.source, " ".join(phantom)))

    print("check_protocol_doc: OK: %d verbs documented and handled (%s)"
          % (len(set(handled)), " ".join(sorted(set(handled)))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
