#!/usr/bin/env bash
# Include-hygiene check: every header under src/ must compile standalone
# (no reliance on transitive includes). Keeps refactors from breaking
# consumers that include a header directly.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

failed=0
for header in $(find src bench -name '*.h' | sort); do
  echo "#include \"${header#*/}\"" > "$tmp/check.cc"
  if ! g++ -std=c++20 -fsyntax-only -Isrc -Ibench "$tmp/check.cc" \
      2> "$tmp/err.txt"; then
    echo "NOT SELF-CONTAINED: $header"
    cat "$tmp/err.txt"
    failed=1
  fi
done

if [ "$failed" -eq 0 ]; then
  echo "all $(find src bench -name '*.h' | wc -l) headers are self-contained"
fi
exit "$failed"
