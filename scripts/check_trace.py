#!/usr/bin/env python3
"""Validates a chrome://tracing JSON file written by --trace-out.

The trace surface is only useful if the emitted file actually loads in
chrome://tracing / Perfetto, so CI runs this after a `slimfast_cli
replay --trace-out` run and fails on any malformation: not a JSON
object, missing or non-list "traceEvents", an event missing the
complete-event fields (name/ph/ts/dur/pid/tid), a phase other than "X"
(the writer only emits complete events), or negative timestamps or
durations. An empty traceEvents list also fails — a run that executed
ingest and relearn stages must have recorded spans.

Usage: check_trace.py TRACE.json [--min-events N]
"""

import json
import sys

REQUIRED_EVENT_FIELDS = {
    "name": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    min_events = 1
    if len(argv) == 4 and argv[2] == "--min-events":
        min_events = int(argv[3])
    elif len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")

    if not isinstance(data, dict):
        fail(f"top level is not an object: {type(data).__name__}")
    if "traceEvents" not in data:
        fail("missing top-level 'traceEvents'")
    events = data["traceEvents"]
    if not isinstance(events, list):
        fail(f"'traceEvents' is not a list: {type(events).__name__}")
    if len(events) < min_events:
        fail(f"expected at least {min_events} events, got {len(events)}")

    names = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object: {event!r}")
        for field, expected in REQUIRED_EVENT_FIELDS.items():
            if field not in event:
                fail(f"traceEvents[{i}] is missing '{field}': {event!r}")
            value = event[field]
            if isinstance(value, bool) or not isinstance(value, expected):
                fail(
                    f"traceEvents[{i}].{field} has wrong type "
                    f"{type(value).__name__}: {event!r}"
                )
        if event["ph"] != "X":
            fail(
                f"traceEvents[{i}].ph is '{event['ph']}'; the writer only "
                f"emits complete ('X') events"
            )
        if event["ts"] < 0 or event["dur"] < 0:
            fail(
                f"traceEvents[{i}] has negative ts/dur: ts={event['ts']} "
                f"dur={event['dur']}"
            )
        if not event["name"]:
            fail(f"traceEvents[{i}] has an empty name")
        names.add(event["name"])

    print(
        f"check_trace: OK: {path} ({len(events)} events, "
        f"{len(names)} distinct spans: {', '.join(sorted(names))})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
