#!/usr/bin/env python3
"""Checks that markdown links resolve.

Validates every inline link and image in the given markdown files (and
all *.md under the given directories):

  - relative file links must point at an existing file or directory
    (resolved against the linking file; paths starting with '/' resolve
    against the repository root),
  - fragment links (#section, file.md#section) must name a heading that
    exists in the target file, using GitHub's anchor slugification,
  - external links (http/https/mailto) are recognized but NOT fetched —
    the checker must work offline and stay deterministic in CI.

Usage: check_md_links.py [PATH ...]
Defaults to README.md ROADMAP.md CHANGES.md docs/ when no paths are given.
Exits 1 with one line per broken link.
"""

import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target), ignoring code
# spans handled below. Titles ("...") after the target are stripped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading):
    """GitHub's heading -> anchor transform (close enough for ASCII docs)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)  # formatting markers
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links -> text
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    return slug


def headings_of(path):
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                anchors.add(github_slug(match.group(1)))
    return anchors


def strip_code(line):
    """Removes `code spans` so example links inside them are not checked."""
    return re.sub(r"`[^`]*`", "``", line)


def check_file(path, repo_root, errors):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(strip_code(line)):
                target = match.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                    continue  # external scheme (http, https, mailto, ...)
                file_part, _, fragment = target.partition("#")
                if file_part:
                    if file_part.startswith("/"):
                        resolved = os.path.join(repo_root,
                                                file_part.lstrip("/"))
                    else:
                        resolved = os.path.join(os.path.dirname(path),
                                                file_part)
                    resolved = os.path.normpath(resolved)
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{path}:{lineno}: broken link '{target}' "
                            f"(no such file: {resolved})"
                        )
                        continue
                else:
                    resolved = path
                if fragment:
                    if not resolved.endswith(".md"):
                        continue  # anchors into non-markdown: not checked
                    if github_slug(fragment) not in headings_of(resolved):
                        errors.append(
                            f"{path}:{lineno}: broken anchor '{target}' "
                            f"(no heading '#{fragment}' in {resolved})"
                        )


def collect(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(
                    os.path.join(root, n) for n in sorted(names)
                    if n.endswith(".md")
                )
        elif path.endswith(".md") and os.path.exists(path):
            files.append(path)
        else:
            print(f"check_md_links: WARNING: skipping {path}",
                  file=sys.stderr)
    return files


def main(argv):
    paths = argv[1:] or ["README.md", "ROADMAP.md", "CHANGES.md", "docs"]
    repo_root = os.getcwd()
    errors = []
    files = collect(paths)
    for path in files:
        check_file(path, repo_root, errors)
    for error in errors:
        print(f"check_md_links: FAIL: {error}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_md_links: OK: {len(files)} files, no broken links")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
