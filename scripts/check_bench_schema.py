#!/usr/bin/env python3
"""Validates the BENCH_runtime.json schema emitted by `slimfast_cli bench`.

The bench trajectory is only comparable across commits if every emitter
keeps the shared BenchReporter schema (bench/bench_common.h). CI runs this
after `slimfast_cli bench --quick` and fails the job on any drift: missing
or mistyped top-level keys, malformed phase/speedup entries, or a required
phase disappearing from the runtime scenario.

Usage: check_bench_schema.py BENCH_runtime.json
"""

import json
import sys

# Every phase the runtime scenario must record. `slimfast_cli bench` emits
# these in both full and --quick mode; renaming one is a schema change and
# must update this list, the README, and the bench doc comment together.
REQUIRED_PHASES = [
    "generate_replicas",
    "compile",
    "compile_cached",
    "learn_erm_batch",
    "learn_erm_sparse",
    "learn_em",
    "learn_em_sparse",
    "gibbs_marginals",
    "eval_grid",
    "ingest_delta",
    "relearn_warm",
]

# Speedup entries the scenario must measure: compilation caching, the
# dense-to-sparse representation change, the exec-layer Gibbs scaling, and
# the incremental engine (delta-compile ingest, warm-started relearning).
REQUIRED_SPEEDUPS = [
    "compile_cached_vs_cold",
    "learn_erm_sparse_vs_dense",
    "learn_em_sparse_vs_dense",
    "gibbs_marginals",
    "ingest_delta_vs_recompile",
    "relearn_warm_vs_cold",
]

TOP_LEVEL = {
    "bench": str,
    "threads": int,
    "cores": int,
    "git": str,
    "phases": list,
    "speedups": list,
}


def fail(message):
    print(f"check_bench_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def type_name(expected):
    if isinstance(expected, tuple):
        return " or ".join(t.__name__ for t in expected)
    return expected.__name__


def check_entry(kind, index, entry, fields):
    if not isinstance(entry, dict):
        fail(f"{kind}[{index}] is not an object: {entry!r}")
    for name, expected in fields.items():
        if name not in entry:
            fail(f"{kind}[{index}] is missing key '{name}': {entry!r}")
        value = entry[name]
        # bool is an int subclass in Python; reject it explicitly.
        if isinstance(value, bool) or not isinstance(value, expected):
            fail(
                f"{kind}[{index}].{name} should be {type_name(expected)}, "
                f"got {type(value).__name__}: {entry!r}"
            )
    extra = set(entry) - set(fields)
    if extra:
        fail(f"{kind}[{index}] has unexpected keys {sorted(extra)}")


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")

    if not isinstance(data, dict):
        fail(f"top level is not an object: {type(data).__name__}")
    for name, expected in TOP_LEVEL.items():
        if name not in data:
            fail(f"missing top-level key '{name}'")
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, expected):
            fail(
                f"top-level '{name}' should be {type_name(expected)}, "
                f"got {type(value).__name__}"
            )
    extra = set(data) - set(TOP_LEVEL)
    if extra:
        fail(f"unexpected top-level keys {sorted(extra)}")

    if data["threads"] < 1:
        fail(f"threads must be >= 1, got {data['threads']}")
    if data["cores"] < 1:
        fail(f"cores must be >= 1, got {data['cores']}")
    if not data["git"]:
        fail("git describe is empty")

    for i, phase in enumerate(data["phases"]):
        check_entry(
            "phases", i, phase,
            {"name": str, "seconds": (int, float), "threads": int},
        )
        if phase["seconds"] < 0:
            fail(f"phases[{i}].seconds is negative: {phase['seconds']}")
        # A required phase recording 0 seconds means its timer never ran
        # (a broken stopwatch or a stubbed-out phase), not that the work
        # was free: BenchReporter emits 9 decimal places, so even a
        # cache-served microsecond lookup records a positive value. Fail
        # loudly instead of letting a dead phase pass as "fast".
        if phase["name"] in REQUIRED_PHASES and phase["seconds"] <= 0:
            fail(
                f"phases[{i}] ('{phase['name']}') is a required phase with "
                f"seconds <= 0: {phase['seconds']}"
            )
        if phase["threads"] < 1:
            fail(f"phases[{i}].threads must be >= 1: {phase['threads']}")

    for i, speedup in enumerate(data["speedups"]):
        check_entry(
            "speedups", i, speedup,
            {
                "phase": str,
                "baseline_threads": int,
                "threads": int,
                "speedup": (int, float),
            },
        )

    phase_names = {phase["name"] for phase in data["phases"]}
    missing = [name for name in REQUIRED_PHASES if name not in phase_names]
    if missing:
        fail(f"required phases missing: {missing} (have {sorted(phase_names)})")

    speedup_names = {entry["phase"] for entry in data["speedups"]}
    missing = [
        name for name in REQUIRED_SPEEDUPS if name not in speedup_names
    ]
    if missing:
        fail(
            f"required speedups missing: {missing} "
            f"(have {sorted(speedup_names)})"
        )

    print(
        f"check_bench_schema: OK: {path} ({len(data['phases'])} phases, "
        f"{len(data['speedups'])} speedups, threads={data['threads']}, "
        f"cores={data['cores']}, git={data['git']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
