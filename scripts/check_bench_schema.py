#!/usr/bin/env python3
"""Validates the BENCH JSON schema emitted by the slimfast_cli benches.

The bench trajectory is only comparable across commits if every emitter
keeps the shared BenchReporter schema (bench/bench_common.h). CI runs this
after `slimfast_cli bench --quick` and `slimfast_cli loadgen --quick` and
fails the job on any drift: missing or mistyped top-level keys, malformed
phase/speedup entries, a required phase disappearing from a scenario, or
malformed latency percentiles (each of p50/p95/p99 must be a positive
number and the percentile order p50 <= p95 <= p99 must hold).

Speedup entries carry exactly one result key: either "speedup" (a
number — the measured ratio) or "bit_identity_verified" (the literal
true — the comparison ran and the outputs matched bitwise, but the box
could not measure a meaningful ratio). The "gibbs_marginals" entry is
held to the machine: on a multi-core box (top-level "cores" > 1) it must
record a "speedup"; on a single-core box it must record
"bit_identity_verified" instead — a "speedup" measured at one core is
noise and must not enter the trajectory.

The runtime scenario must also carry a non-empty top-level "scaling"
array — the per-core scaling curve of the SIMD EM phase, one
{"phase", "threads", "seconds"} point per thread count from 1 up to the
box's core count, threads strictly ascending from 1.

The required phases depend on the emitter, keyed by the top-level "bench"
name: "serve" is the loadgen scenario (serve_qps + query_latency plus
the Zipfian scheduler gate's flat/sched hot-shard staleness phases, all
latency phases with percentiles), "storage" is the durability scenario (wal_append /
wal_replay / snapshot_load plus the snapshot_load_vs_wal_replay speedup);
anything else is held to the runtime scenario's phase list.

Benches may also carry an optional top-level "metrics" object — the
observability layer's counters and gauges ({"counters": {...},
"gauges": {...}}). Counter values must be non-negative integers, gauge
values finite numbers; the serve scenario must carry its lifetime
counters (queries_total / relearns_total / publishes_total /
sheds_total / events_dropped_total) and the slo_breached_rules gauge so
the trajectory records work done — and load shed, event-ring overflow,
and SLO health — not just latency.

Usage: check_bench_schema.py BENCH_runtime.json
"""

import json
import sys

# Every phase the runtime scenario must record. `slimfast_cli bench` emits
# these in both full and --quick mode; renaming one is a schema change and
# must update this list, the README, and the bench doc comment together.
RUNTIME_REQUIRED_PHASES = [
    "generate_replicas",
    "compile",
    "compile_cached",
    "learn_erm_batch",
    "learn_erm_sparse",
    "learn_em",
    "learn_em_sparse",
    "learn_em_simd",
    "learn_erm_simd",
    "gibbs_marginals",
    "eval_grid",
    "ingest_delta",
    "relearn_warm",
]

# Speedup entries the runtime scenario must measure: compilation caching,
# the dense-to-sparse representation change, the SIMD kernel tables over
# both learners, the exec-layer Gibbs scaling, and the incremental engine
# (delta-compile ingest, warm relearning).
RUNTIME_REQUIRED_SPEEDUPS = [
    "compile_cached_vs_cold",
    "learn_erm_sparse_vs_dense",
    "learn_em_sparse_vs_dense",
    "learn_em_simd_vs_scalar",
    "learn_erm_simd_vs_scalar",
    "gibbs_marginals",
    "ingest_delta_vs_recompile",
    "relearn_warm_vs_cold",
]

# The serving scenario (`slimfast_cli loadgen`): throughput, the query
# latency distribution, and the skewed-scenario hot-shard staleness of
# both relearn policies (the scheduler's perf gate). Every latency phase
# must carry the percentile keys.
SERVE_REQUIRED_PHASES = [
    "serve_qps",
    "query_latency",
    "flat_hot_staleness_p99",
    "sched_hot_staleness_p99",
]
SERVE_REQUIRED_SPEEDUPS = []

# The durability scenario (`slimfast_cli storagebench`): WAL append and
# replay rates plus the snapshot bulk-load path, with the snapshot's
# advantage over record-at-a-time replay as the tracked speedup.
STORAGE_REQUIRED_PHASES = [
    "wal_append",
    "wal_replay",
    "snapshot_load",
]
STORAGE_REQUIRED_SPEEDUPS = [
    "snapshot_load_vs_wal_replay",
]

# Phases that must carry p50/p95/p99, per bench name.
PERCENTILE_PHASES = {
    "serve": [
        "query_latency",
        "flat_hot_staleness_p99",
        "sched_hot_staleness_p99",
    ]
}

TOP_LEVEL = {
    "bench": str,
    "threads": int,
    "cores": int,
    "git": str,
    "phases": list,
    "speedups": list,
}

# Optional top-level keys: the observability metrics object, emitted only
# when the bench recorded counters or gauges (bench/bench_common.h
# AddCounter/AddGauge), and the per-core scaling curve (AddScalingPoint;
# required non-empty for the runtime scenario, see check_scaling).
OPTIONAL_TOP_LEVEL = {
    "metrics": dict,
    "scaling": list,
}

# Counters the serve scenario must record under metrics.counters: the
# loadgen derives them from its own report (not the obs registry), so
# they are present even in SLIMFAST_OBS=0 builds. events_dropped_total
# is the flight recorder's event-ring overflow count (0 in OBS-off
# builds — the EventLog stub drops nothing because it records nothing).
SERVE_REQUIRED_COUNTERS = [
    "queries_total",
    "relearns_total",
    "publishes_total",
    "sheds_total",
    "events_dropped_total",
]

# Gauges the serve scenario must record under metrics.gauges:
# slo_breached_rules is the number of SLO watchdog rules latched at the
# end of the run (the loadgen configures no ceilings, so a healthy run
# records 0; the key existing proves the HEALTH plumbing is wired).
SERVE_REQUIRED_GAUGES = [
    "slo_breached_rules",
]


def fail(message):
    print(f"check_bench_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def type_name(expected):
    if isinstance(expected, tuple):
        return " or ".join(t.__name__ for t in expected)
    return expected.__name__


def type_mismatch(value, expected):
    # bool is an int subclass in Python; reject it unless bool is what the
    # schema actually asks for (bit_identity_verified).
    if isinstance(value, bool):
        return expected is not bool
    return not isinstance(value, expected)


def check_entry(kind, index, entry, fields, optional=None):
    if not isinstance(entry, dict):
        fail(f"{kind}[{index}] is not an object: {entry!r}")
    for name, expected in fields.items():
        if name not in entry:
            fail(f"{kind}[{index}] is missing key '{name}': {entry!r}")
        value = entry[name]
        if type_mismatch(value, expected):
            fail(
                f"{kind}[{index}].{name} should be {type_name(expected)}, "
                f"got {type(value).__name__}: {entry!r}"
            )
    optional = optional or {}
    for name, expected in optional.items():
        if name not in entry:
            continue
        value = entry[name]
        if type_mismatch(value, expected):
            fail(
                f"{kind}[{index}].{name} should be {type_name(expected)}, "
                f"got {type(value).__name__}: {entry!r}"
            )
    extra = set(entry) - set(fields) - set(optional)
    if extra:
        fail(f"{kind}[{index}] has unexpected keys {sorted(extra)}")


def check_metrics(metrics, bench_name):
    """Validates the optional top-level observability "metrics" object."""
    extra = set(metrics) - {"counters", "gauges"}
    if extra:
        fail(f"metrics has unexpected keys {sorted(extra)}")
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    if not isinstance(counters, dict):
        fail(f"metrics.counters is not an object: {counters!r}")
    if not isinstance(gauges, dict):
        fail(f"metrics.gauges is not an object: {gauges!r}")
    for name, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            fail(
                f"metrics.counters['{name}'] must be a non-negative "
                f"integer: {value!r}"
            )
    for name, value in gauges.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail(f"metrics.gauges['{name}'] must be a number: {value!r}")
        if value != value or value in (float("inf"), float("-inf")):
            fail(f"metrics.gauges['{name}'] must be finite: {value!r}")
    if bench_name == "serve":
        missing = [n for n in SERVE_REQUIRED_COUNTERS if n not in counters]
        if missing:
            fail(
                f"serve metrics.counters missing required keys {missing} "
                f"(have {sorted(counters)})"
            )
        missing = [n for n in SERVE_REQUIRED_GAUGES if n not in gauges]
        if missing:
            fail(
                f"serve metrics.gauges missing required keys {missing} "
                f"(have {sorted(gauges)})"
            )


def check_speedup(index, entry, cores):
    """Validates one speedups[] entry, including its result key.

    Every entry names a phase and the thread counts it compared, plus
    exactly one result key: "speedup" (a measured ratio) or
    "bit_identity_verified" (the literal true — the cross-check ran and
    matched bitwise, but no meaningful ratio exists on this box). The
    "gibbs_marginals" entry additionally must match the machine: a ratio
    on a multi-core box, bit-identity on a single-core box.
    """
    check_entry(
        "speedups", index, entry,
        {"phase": str, "baseline_threads": int, "threads": int},
        optional={
            "speedup": (int, float),
            "bit_identity_verified": bool,
        },
    )
    has_ratio = "speedup" in entry
    has_identity = "bit_identity_verified" in entry
    if has_ratio == has_identity:
        fail(
            f"speedups[{index}] ('{entry['phase']}') must carry exactly one "
            f"of 'speedup' or 'bit_identity_verified': {entry!r}"
        )
    if has_identity and entry["bit_identity_verified"] is not True:
        fail(
            f"speedups[{index}] ('{entry['phase']}').bit_identity_verified "
            f"must be the literal true: {entry!r}"
        )
    if entry["phase"] == "gibbs_marginals":
        if cores > 1 and not has_ratio:
            fail(
                f"speedups[{index}] ('gibbs_marginals'): multi-core run "
                f"(cores={cores}) must record a 'speedup' ratio, not "
                f"bit_identity_verified"
            )
        if cores == 1 and not has_identity:
            fail(
                f"speedups[{index}] ('gibbs_marginals'): single-core run "
                f"must record bit_identity_verified, not a 'speedup' "
                f"(a 1-core ratio is noise)"
            )


def check_scaling(scaling):
    """Validates the top-level per-core scaling curve."""
    prev_threads = 0
    for i, point in enumerate(scaling):
        check_entry(
            "scaling", i, point,
            {"phase": str, "threads": int, "seconds": (int, float)},
        )
        if point["seconds"] <= 0:
            fail(
                f"scaling[{i}] ('{point['phase']}') has seconds <= 0: "
                f"{point['seconds']}"
            )
        if i == 0 and point["threads"] != 1:
            fail(
                f"scaling[0] must start the curve at threads=1, got "
                f"{point['threads']}"
            )
        if point["threads"] <= prev_threads:
            fail(
                f"scaling[{i}].threads must be strictly ascending: "
                f"{point['threads']} after {prev_threads}"
            )
        prev_threads = point["threads"]


def check_percentiles(index, phase):
    """Type- and order-checks a phase's p50/p95/p99 latency percentiles."""
    present = [key for key in ("p50", "p95", "p99") if key in phase]
    if not present:
        return False
    if len(present) != 3:
        fail(
            f"phases[{index}] ('{phase['name']}') has a partial percentile "
            f"set {present}; latency phases carry all of p50/p95/p99"
        )
    p50, p95, p99 = phase["p50"], phase["p95"], phase["p99"]
    for key, value in (("p50", p50), ("p95", p95), ("p99", p99)):
        if value <= 0:
            fail(
                f"phases[{index}] ('{phase['name']}').{key} is a latency "
                f"percentile and must be > 0: {value}"
            )
    if not p50 <= p95 <= p99:
        fail(
            f"phases[{index}] ('{phase['name']}') has misordered latency "
            f"percentiles (need p50 <= p95 <= p99): p50={p50} p95={p95} "
            f"p99={p99}"
        )
    return True


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")

    if not isinstance(data, dict):
        fail(f"top level is not an object: {type(data).__name__}")
    for name, expected in TOP_LEVEL.items():
        if name not in data:
            fail(f"missing top-level key '{name}'")
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, expected):
            fail(
                f"top-level '{name}' should be {type_name(expected)}, "
                f"got {type(value).__name__}"
            )
    for name, expected in OPTIONAL_TOP_LEVEL.items():
        if name not in data:
            continue
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, expected):
            fail(
                f"top-level '{name}' should be {type_name(expected)}, "
                f"got {type(value).__name__}"
            )
    extra = set(data) - set(TOP_LEVEL) - set(OPTIONAL_TOP_LEVEL)
    if extra:
        fail(f"unexpected top-level keys {sorted(extra)}")

    if data["threads"] < 1:
        fail(f"threads must be >= 1, got {data['threads']}")
    if data["cores"] < 1:
        fail(f"cores must be >= 1, got {data['cores']}")
    if not data["git"]:
        fail("git describe is empty")

    bench_name = data["bench"]
    if bench_name == "serve":
        required_phases = SERVE_REQUIRED_PHASES
        required_speedups = SERVE_REQUIRED_SPEEDUPS
    elif bench_name == "storage":
        required_phases = STORAGE_REQUIRED_PHASES
        required_speedups = STORAGE_REQUIRED_SPEEDUPS
    else:
        required_phases = RUNTIME_REQUIRED_PHASES
        required_speedups = RUNTIME_REQUIRED_SPEEDUPS
    percentile_phases = PERCENTILE_PHASES.get(bench_name, [])

    if "metrics" in data:
        check_metrics(data["metrics"], bench_name)
    elif bench_name == "serve":
        fail(
            "serve bench is missing the top-level 'metrics' object "
            "(the loadgen always records its lifetime counters)"
        )

    with_percentiles = set()
    for i, phase in enumerate(data["phases"]):
        check_entry(
            "phases", i, phase,
            {"name": str, "seconds": (int, float), "threads": int},
            optional={
                "p50": (int, float),
                "p95": (int, float),
                "p99": (int, float),
                "qps": (int, float),
            },
        )
        if phase["seconds"] < 0:
            fail(f"phases[{i}].seconds is negative: {phase['seconds']}")
        # A required phase recording 0 seconds means its timer never ran
        # (a broken stopwatch or a stubbed-out phase), not that the work
        # was free: BenchReporter emits 9 decimal places, so even a
        # cache-served microsecond lookup records a positive value. Fail
        # loudly instead of letting a dead phase pass as "fast".
        if phase["name"] in required_phases and phase["seconds"] <= 0:
            fail(
                f"phases[{i}] ('{phase['name']}') is a required phase with "
                f"seconds <= 0: {phase['seconds']}"
            )
        if phase["threads"] < 1:
            fail(f"phases[{i}].threads must be >= 1: {phase['threads']}")
        if check_percentiles(i, phase):
            with_percentiles.add(phase["name"])
        if "qps" in phase and phase["qps"] <= 0:
            fail(f"phases[{i}].qps must be > 0: {phase['qps']}")

    for i, speedup in enumerate(data["speedups"]):
        check_speedup(i, speedup, data["cores"])

    if "scaling" in data:
        check_scaling(data["scaling"])
    is_runtime = bench_name not in ("serve", "storage")
    if is_runtime and not data.get("scaling"):
        fail(
            "runtime bench must carry a non-empty top-level 'scaling' "
            "array (the per-core learn_em_simd scaling curve)"
        )

    phase_names = {phase["name"] for phase in data["phases"]}
    missing = [name for name in required_phases if name not in phase_names]
    if missing:
        fail(f"required phases missing: {missing} (have {sorted(phase_names)})")

    missing = [
        name for name in percentile_phases if name not in with_percentiles
    ]
    if missing:
        fail(
            f"phases {missing} must carry the p50/p95/p99 latency "
            f"percentiles in the '{bench_name}' scenario"
        )

    speedup_names = {entry["phase"] for entry in data["speedups"]}
    missing = [
        name for name in required_speedups if name not in speedup_names
    ]
    if missing:
        fail(
            f"required speedups missing: {missing} "
            f"(have {sorted(speedup_names)})"
        )

    num_metrics = sum(
        len(data.get("metrics", {}).get(k, {})) for k in ("counters", "gauges")
    )
    print(
        f"check_bench_schema: OK: {path} ('{bench_name}', "
        f"{num_metrics} metrics, "
        f"{len(data['phases'])} phases, "
        f"{len(data['speedups'])} speedups, "
        f"{len(data.get('scaling', []))} scaling points, "
        f"threads={data['threads']}, "
        f"cores={data['cores']}, git={data['git']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
