// Figure 4: EM versus ERM on the synthetic instance of Example 6
// (1000 sources x 1000 objects), sweeping (a) the amount of ground truth,
// (b) the observation density, and (c) the average source accuracy.
//
// Expected shape (paper): ERM depends only on the amount of ground truth
// and is flat in the other two knobs; EM improves with density and with
// source accuracy, and overtakes ERM when those are high while labels are
// scarce.

#include <cstdio>

#include "bench_common.h"
#include "core/slimfast.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"
#include "util/math.h"
#include "util/random.h"

using namespace slimfast;

namespace {

struct PanelPoint {
  double x;
  double em;
  double erm;
};

/// Runs Sources-EM and Sources-ERM (the paper's footnote 4 configuration)
/// averaged over seeds.
PanelPoint RunPoint(double x, const SyntheticConfig& config,
                    double train_fraction) {
  std::vector<double> em_scores;
  std::vector<double> erm_scores;
  for (int32_t rep = 0; rep < bench::NumSeeds(); ++rep) {
    uint64_t seed = 1000 + 97ULL * static_cast<uint64_t>(rep);
    auto synth = GenerateSynthetic(config, seed).ValueOrDie();
    const Dataset& d = synth.dataset;
    Rng rng(seed);
    auto split = MakeSplit(d, train_fraction, &rng).ValueOrDie();
    auto em = MakeSourcesEm()->Run(d, split, seed).ValueOrDie();
    auto erm = MakeSourcesErm()->Run(d, split, seed).ValueOrDie();
    em_scores.push_back(
        TestAccuracy(d, em.predicted_values, split).ValueOrDie());
    erm_scores.push_back(
        TestAccuracy(d, erm.predicted_values, split).ValueOrDie());
  }
  return PanelPoint{x, Mean(em_scores), Mean(erm_scores)};
}

SyntheticConfig BaseConfig() {
  SyntheticConfig config;
  config.name = "fig4";
  config.num_sources = 1000;
  config.num_objects = 1000;
  config.num_values = 2;
  config.mean_accuracy = 0.7;
  config.accuracy_spread = 0.1;
  config.density = 0.01;
  return config;
}

void PrintPanel(const char* title, const char* x_label,
                const std::vector<PanelPoint>& points) {
  std::printf("%s\n", title);
  std::printf("%-14s %-10s %s\n", x_label, "EM", "ERM");
  for (const PanelPoint& p : points) {
    std::printf("%-14.4f %-10.3f %.3f\n", p.x, p.em, p.erm);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 4: EM vs ERM on synthetic data",
                     "Figure 4(a)-(c), Example 6 (Sec. 4.1)");

  // (a) Varying training data; accuracy 0.7, density 0.01.
  {
    std::vector<PanelPoint> points;
    for (double td : {0.01, 0.10, 0.20, 0.40, 0.60}) {
      points.push_back(RunPoint(td * 100, BaseConfig(), td));
    }
    PrintPanel("(a) Varying training data (acc=0.7, density=0.01)",
               "TD (%)", points);
  }

  // (b) Varying density; accuracy 0.6, ~400 labeled source observations.
  {
    std::vector<PanelPoint> points;
    for (double density : {0.005, 0.010, 0.015, 0.020}) {
      SyntheticConfig config = BaseConfig();
      config.mean_accuracy = 0.6;
      config.density = density;
      // 400 labeled observations => fraction of objects such that
      // fraction * |O| * (|S| * p) = 400.
      double fraction =
          400.0 / (config.num_objects * config.num_sources * density);
      points.push_back(RunPoint(density, config, fraction));
    }
    PrintPanel("(b) Varying density (acc=0.6, 400 labeled observations)",
               "density p", points);
  }

  // (c) Varying average source accuracy; density 0.005, 5% training.
  {
    std::vector<PanelPoint> points;
    for (double accuracy : {0.5, 0.6, 0.7, 0.8}) {
      SyntheticConfig config = BaseConfig();
      config.mean_accuracy = accuracy;
      config.density = 0.005;
      points.push_back(RunPoint(accuracy, config, 0.05));
    }
    PrintPanel("(c) Varying avg source accuracy (density=0.005, TD=5%)",
               "avg accuracy", points);
  }

  std::printf(
      "Paper shape check: ERM is flat in (b) and (c) but rises with TD in "
      "(a);\nEM rises with density and accuracy and crosses ERM at the "
      "high end.\n");
  return 0;
}
