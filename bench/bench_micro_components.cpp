// Micro-benchmarks (google-benchmark) of the library's hot components:
// model compilation, posterior evaluation, ERM epochs, EM iterations,
// agreement-matrix construction, and Gibbs sweeps. These back the runtime
// claims of Tables 5/6 with per-component numbers.

#include <benchmark/benchmark.h>

#include "core/em.h"
#include "core/erm.h"
#include "core/factor_graph_compile.h"
#include "core/model.h"
#include "factorgraph/gibbs.h"
#include "opt/matrix_completion.h"
#include "synth/synthetic.h"
#include "util/random.h"

namespace slimfast {
namespace {

SyntheticDataset MakeBenchInstance(int32_t sources, int32_t objects,
                                   double density) {
  SyntheticConfig config;
  config.num_sources = sources;
  config.num_objects = objects;
  config.density = density;
  config.mean_accuracy = 0.7;
  config.accuracy_spread = 0.1;
  config.num_feature_groups = 4;
  config.values_per_group = 8;
  config.feature_effect = 0.1;
  return GenerateSynthetic(config, 42).ValueOrDie();
}

void BM_Compile(benchmark::State& state) {
  auto synth = MakeBenchInstance(static_cast<int32_t>(state.range(0)),
                                 1000, 0.02);
  for (auto _ : state) {
    auto compiled = Compile(synth.dataset, ModelConfig{}).ValueOrDie();
    benchmark::DoNotOptimize(compiled.objects.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          synth.dataset.num_observations());
}
BENCHMARK(BM_Compile)->Arg(100)->Arg(500)->Arg(1000);

void BM_PosteriorAllObjects(benchmark::State& state) {
  auto synth = MakeBenchInstance(500, 1000, 0.02);
  SlimFastModel model(Compile(synth.dataset, ModelConfig{}).ValueOrDie());
  std::vector<double> probs;
  for (auto _ : state) {
    for (const CompiledObject& row : model.compiled().objects) {
      model.Posterior(row, &probs);
      benchmark::DoNotOptimize(probs.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(model.compiled().objects.size()));
}
BENCHMARK(BM_PosteriorAllObjects);

void BM_ErmEpoch(benchmark::State& state) {
  auto synth = MakeBenchInstance(500, 1000, 0.02);
  const Dataset& d = synth.dataset;
  SlimFastModel model(Compile(d, ModelConfig{}).ValueOrDie());
  auto examples = ErmLearner::ObjectExamples(d, model.compiled(),
                                             d.ObjectsWithTruth());
  ErmOptions options;
  options.epochs = 1;
  ErmLearner learner(options);
  Rng rng(1);
  for (auto _ : state) {
    auto stats = learner.FitObjectLoss(examples, &model, &rng);
    benchmark::DoNotOptimize(stats.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(examples.size()));
}
BENCHMARK(BM_ErmEpoch);

void BM_EmIteration(benchmark::State& state) {
  auto synth = MakeBenchInstance(500, 1000, 0.02);
  const Dataset& d = synth.dataset;
  ModelConfig config;
  EmOptions options;
  options.max_iterations = 1;
  EmLearner learner(options);
  for (auto _ : state) {
    SlimFastModel model(Compile(d, config).ValueOrDie());
    Rng rng(1);
    auto stats = learner.Fit(d, {}, &model, &rng);
    benchmark::DoNotOptimize(stats.ok());
  }
}
BENCHMARK(BM_EmIteration);

void BM_AgreementMatrix(benchmark::State& state) {
  auto synth = MakeBenchInstance(static_cast<int32_t>(state.range(0)),
                                 1000, 0.02);
  for (auto _ : state) {
    AgreementMatrix matrix(synth.dataset);
    benchmark::DoNotOptimize(matrix.NumObservedPairs());
  }
}
BENCHMARK(BM_AgreementMatrix)->Arg(100)->Arg(500)->Arg(1000);

void BM_GibbsSweep(benchmark::State& state) {
  auto synth = MakeBenchInstance(200, 500, 0.05);
  SlimFastModel model(Compile(synth.dataset, ModelConfig{}).ValueOrDie());
  auto compilation =
      CompileToFactorGraph(model, synth.dataset, nullptr).ValueOrDie();
  GibbsOptions options;
  options.burn_in = 0;
  options.samples = 1;
  Rng rng(1);
  for (auto _ : state) {
    GibbsSampler sampler(&compilation.graph, options);
    auto marginals = sampler.EstimateMarginals(&rng);
    benchmark::DoNotOptimize(marginals.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          compilation.graph.num_variables());
}
BENCHMARK(BM_GibbsSweep);

}  // namespace
}  // namespace slimfast
