// Table 3: error for estimated source accuracies.
//
// Probabilistic methods only (SLiMFast, Sources-ERM, Sources-EM, Counts,
// ACCU) on Stocks, Demos, and Crowd. Genomics is excluded exactly as in
// the paper: with ~1 observation per source its per-source "true"
// accuracies cannot be estimated reliably.

#include <cstdio>

#include "baselines/registry.h"
#include "bench_common.h"
#include "eval/harness.h"
#include "synth/simulators.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Table 3: source-accuracy estimation error",
                     "Table 3 (Sec. 5.2.2)");

  auto methods_owned = MakeTable3Methods();
  std::vector<FusionMethod*> methods;
  for (auto& m : methods_owned) methods.push_back(m.get());

  SweepSpec spec;
  spec.train_fractions = bench::PaperFractions();
  spec.num_seeds = bench::NumSeeds();

  for (const std::string name : {"stocks", "demos", "crowd"}) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    auto cells = SweepMethods(synth.dataset, methods, spec).ValueOrDie();
    std::printf("%s", RenderSweep(std::string("Weighted accuracy error — ") +
                                      name,
                                  cells, SweepMetric::kSourceError)
                          .c_str());
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: the discriminative methods sit well below the "
      "generative\nones at small TD (Counts needs labels per source; ACCU "
      "suffers when its\nindependence assumption fails), with errors "
      "shrinking as TD grows.\n");
  return 0;
}
