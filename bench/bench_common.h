#ifndef SLIMFAST_BENCH_BENCH_COMMON_H_
#define SLIMFAST_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace slimfast {
namespace bench {

/// Number of random splits averaged per configuration. The paper uses 5;
/// the default here is 3 so the full bench suite completes quickly.
/// Override with SLIMFAST_BENCH_SEEDS.
inline int32_t NumSeeds() {
  const char* env = std::getenv("SLIMFAST_BENCH_SEEDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 3;
}

/// The paper's training-data fractions (Sec. 5.1).
inline std::vector<double> PaperFractions() {
  return {0.001, 0.01, 0.05, 0.10, 0.20};
}

/// Banner helper shared by the bench binaries.
inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Seeds per configuration: %d (SLIMFAST_BENCH_SEEDS to "
              "change)\n",
              NumSeeds());
  std::printf("==========================================================\n\n");
}

/// Wall-clock of one call, in seconds.
template <typename Fn>
inline double TimeSeconds(Fn&& fn) {
  Stopwatch watch;
  fn();
  return watch.ElapsedSeconds();
}

/// Collects per-phase timings and emits the machine-readable JSON schema
/// shared by `slimfast_cli bench` (BENCH_runtime.json) and the bench
/// binaries — one schema, one writer, so the bench trajectory stays
/// comparable across emitters:
///
///   {
///     "bench": "<name>",
///     "threads": N,              // thread budget of the run
///     "cores": C,                // hardware cores (caps real speedup)
///     "git": "<git describe>",
///     "phases": [{"name": "...", "seconds": S, "threads": N}, ...],
///     "speedups": [{"phase": "...", "baseline_threads": 1,
///                   "threads": N, "speedup": X}, ...],
///     "scaling": [{"phase": "...", "threads": T,      // optional; the
///                  "seconds": S}, ...],               // per-core curve
///     "metrics": {                      // optional; present once any
///       "counters": {"name": 123, ...}, // AddCounter/AddGauge was called
///       "gauges": {"name": 0.5, ...}
///     }
///   }
class BenchReporter {
 public:
  explicit BenchReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)), git_(GitDescribe()) {}

  void set_threads(int32_t threads) { threads_ = threads; }
  int32_t threads() const { return threads_; }

  /// Records one timed phase. `threads` is the thread budget the phase ran
  /// with; the same phase may be recorded at several thread counts.
  void AddPhase(const std::string& name, double seconds, int32_t threads) {
    phases_.push_back(Phase{name, seconds, threads});
  }

  /// Records a latency-distribution phase: `seconds` plus nearest-rank
  /// percentiles (p50 <= p95 <= p99, all in seconds). The percentiles are
  /// emitted as additional JSON keys on the phase entry and type-checked
  /// by scripts/check_bench_schema.py, including the ordering.
  void AddLatencyPhase(const std::string& name, double seconds,
                       int32_t threads, double p50, double p95,
                       double p99) {
    Phase phase{name, seconds, threads};
    phase.has_percentiles = true;
    phase.p50 = p50;
    phase.p95 = p95;
    phase.p99 = p99;
    phases_.push_back(phase);
  }

  /// Records a throughput phase: wall-clock `seconds` plus the achieved
  /// queries-per-second, emitted as a "qps" key on the phase entry.
  void AddQpsPhase(const std::string& name, double seconds, int32_t threads,
                   double qps) {
    Phase phase{name, seconds, threads};
    phase.has_qps = true;
    phase.qps = qps;
    phases_.push_back(phase);
  }

  /// Records a measured parallel speedup for a phase.
  void AddSpeedup(const std::string& phase, int32_t baseline_threads,
                  int32_t threads, double speedup) {
    speedups_.push_back(
        Speedup{phase, baseline_threads, threads, speedup, false});
  }

  /// Records that a phase's baseline-vs-parallel pair was verified
  /// bit-identical but its wall-clock ratio is meaningless (a single
  /// hardware core serializes both runs). Emitted as a speedups[] entry
  /// carrying "bit_identity_verified": true instead of a "speedup"
  /// number, so the trajectory never records a fake 1.0x.
  void AddBitIdentity(const std::string& phase, int32_t baseline_threads,
                      int32_t threads) {
    speedups_.push_back(Speedup{phase, baseline_threads, threads, 0.0, true});
  }

  /// Records one point of the per-core scaling curve: `phase` measured
  /// wall-clock at `threads` threads. Points are emitted under the
  /// top-level "scaling" key in insertion order; callers record
  /// threads = 1..HardwareCores() ascending.
  void AddScalingPoint(const std::string& phase, int32_t threads,
                       double seconds) {
    scaling_.push_back(ScalingPoint{phase, threads, seconds});
  }

  /// Records a monotonic counter value (observability metrics carried
  /// alongside the phase timings). Emitted under "metrics"/"counters".
  void AddCounter(const std::string& name, int64_t value) {
    counters_.emplace_back(name, value);
  }

  /// Records a point-in-time gauge value. Emitted under
  /// "metrics"/"gauges".
  void AddGauge(const std::string& name, double value) {
    gauges_.emplace_back(name, value);
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + JsonEscape(bench_name_) + "\",\n";
    out += "  \"threads\": " + std::to_string(threads_) + ",\n";
    out += "  \"cores\": " + std::to_string(HardwareCores()) + ",\n";
    out += "  \"git\": \"" + JsonEscape(git_) + "\",\n";
    out += "  \"phases\": [";
    for (size_t i = 0; i < phases_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n    {\"name\": \"" + JsonEscape(phases_[i].name) +
             "\", \"seconds\": " + FormatSeconds(phases_[i].seconds) +
             ", \"threads\": " + std::to_string(phases_[i].threads);
      if (phases_[i].has_percentiles) {
        out += ", \"p50\": " + FormatSeconds(phases_[i].p50) +
               ", \"p95\": " + FormatSeconds(phases_[i].p95) +
               ", \"p99\": " + FormatSeconds(phases_[i].p99);
      }
      if (phases_[i].has_qps) {
        out += ", \"qps\": " + FormatSeconds(phases_[i].qps);
      }
      out += "}";
    }
    out += phases_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"speedups\": [";
    for (size_t i = 0; i < speedups_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n    {\"phase\": \"" + JsonEscape(speedups_[i].phase) +
             "\", \"baseline_threads\": " +
             std::to_string(speedups_[i].baseline_threads) +
             ", \"threads\": " + std::to_string(speedups_[i].threads);
      if (speedups_[i].bit_identity_only) {
        out += ", \"bit_identity_verified\": true}";
      } else {
        out += ", \"speedup\": " + FormatSeconds(speedups_[i].speedup) + "}";
      }
    }
    const bool have_metrics = !counters_.empty() || !gauges_.empty();
    out += speedups_.empty() ? "]" : "\n  ]";
    if (!scaling_.empty()) {
      out += ",\n  \"scaling\": [";
      for (size_t i = 0; i < scaling_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\n    {\"phase\": \"" + JsonEscape(scaling_[i].phase) +
               "\", \"threads\": " + std::to_string(scaling_[i].threads) +
               ", \"seconds\": " + FormatSeconds(scaling_[i].seconds) + "}";
      }
      out += "\n  ]";
    }
    out += have_metrics ? ",\n" : "\n";
    if (have_metrics) {
      out += "  \"metrics\": {\n    \"counters\": {";
      for (size_t i = 0; i < counters_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + JsonEscape(counters_[i].first) +
               "\": " + std::to_string(counters_[i].second);
      }
      out += "},\n    \"gauges\": {";
      for (size_t i = 0; i < gauges_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + JsonEscape(gauges_[i].first) +
               "\": " + FormatSeconds(gauges_[i].second);
      }
      out += "}\n  }\n";
    }
    out += "}\n";
    return out;
  }

  /// Writes ToJson() to `path`; returns false (with a note on stderr) on
  /// I/O failure.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
  }

  /// Hardware concurrency visible to this process (at least 1). Real
  /// wall-clock speedup is capped by this, whatever the thread budget.
  static int32_t HardwareCores() {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int32_t>(n);
  }

  /// `git describe --always --dirty` of the working tree, or "unknown".
  static std::string GitDescribe() {
    std::FILE* pipe =
        ::popen("git describe --always --dirty 2>/dev/null", "r");
    if (pipe == nullptr) return "unknown";
    char buffer[128];
    std::string out;
    while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
    ::pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    return out.empty() ? "unknown" : out;
  }

 private:
  struct Phase {
    std::string name;
    double seconds;
    int32_t threads;
    bool has_percentiles = false;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    bool has_qps = false;
    double qps = 0.0;
  };
  struct Speedup {
    std::string phase;
    int32_t baseline_threads;
    int32_t threads;
    double speedup;
    /// True for AddBitIdentity entries: the JSON carries
    /// "bit_identity_verified": true and no "speedup" number.
    bool bit_identity_only;
  };
  struct ScalingPoint {
    std::string phase;
    int32_t threads;
    double seconds;
  };

  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  // 9 decimal places (nanosecond granularity): sub-microsecond phases —
  // a cache-served compile lookup — must never round down to a bare 0,
  // which the schema checker treats as a dead timer for required phases.
  static std::string FormatSeconds(double v) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9f", v);
    return buffer;
  }

  std::string bench_name_;
  std::string git_;
  int32_t threads_ = 1;
  std::vector<Phase> phases_;
  std::vector<Speedup> speedups_;
  std::vector<ScalingPoint> scaling_;
  std::vector<std::pair<std::string, int64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
};

}  // namespace bench
}  // namespace slimfast

#endif  // SLIMFAST_BENCH_BENCH_COMMON_H_
