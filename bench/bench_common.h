#ifndef SLIMFAST_BENCH_BENCH_COMMON_H_
#define SLIMFAST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace slimfast {
namespace bench {

/// Number of random splits averaged per configuration. The paper uses 5;
/// the default here is 3 so the full bench suite completes quickly.
/// Override with SLIMFAST_BENCH_SEEDS.
inline int32_t NumSeeds() {
  const char* env = std::getenv("SLIMFAST_BENCH_SEEDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 3;
}

/// The paper's training-data fractions (Sec. 5.1).
inline std::vector<double> PaperFractions() {
  return {0.001, 0.01, 0.05, 0.10, 0.20};
}

/// Banner helper shared by the bench binaries.
inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Seeds per configuration: %d (SLIMFAST_BENCH_SEEDS to "
              "change)\n",
              NumSeeds());
  std::printf("==========================================================\n\n");
}

}  // namespace bench
}  // namespace slimfast

#endif  // SLIMFAST_BENCH_BENCH_COMMON_H_
