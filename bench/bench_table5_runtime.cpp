// Table 5: wall-clock runtimes of the fusion methods on every dataset.
//
// End-to-end timing (dataset compilation + learning + inference) at the
// paper's training fractions. Absolute numbers differ from the paper —
// their DeepDive stack paid database/compilation overheads our in-memory
// engine does not — but the relationships the paper highlights should
// hold: EM-based runs cost more than ERM-based runs, and incorporating
// features costs little over Sources-only variants.
//
// Thread budget: SLIMFAST_THREADS (default 1) parallelizes the sweep grid.
// Per-phase timings are also written as BENCH_table5_runtime.json — the
// same schema `slimfast_cli bench` emits — so runtime trajectories are
// machine-comparable across commits.

#include <cstdio>

#include "baselines/registry.h"
#include "bench_common.h"
#include "eval/harness.h"
#include "exec/parallel.h"
#include "synth/simulators.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Table 5: end-to-end wall-clock runtime (seconds)",
                     "Table 5 (Appendix C)");

  std::vector<std::unique_ptr<FusionMethod>> methods_owned;
  // Grid parallelism lives in the harness; per-run learners stay serial so
  // concurrent cells don't each spawn a nested SLIMFAST_THREADS-sized pool.
  SlimFastOptions method_options;
  method_options.exec.threads = 1;
  for (const char* name : {"SLiMFast", "Sources-ERM", "Sources-EM",
                           "Counts", "ACCU", "CATD", "SSTF"}) {
    methods_owned.push_back(
        MakeMethodByName(name, method_options).ValueOrDie());
  }
  std::vector<FusionMethod*> methods;
  for (auto& m : methods_owned) methods.push_back(m.get());

  SweepSpec spec;
  spec.train_fractions = {0.001, 0.05, 0.20};
  spec.num_seeds = 1;  // timing runs; single split per fraction

  Executor exec{ExecOptions{}};  // SLIMFAST_THREADS, default serial
  bench::BenchReporter reporter("table5_runtime");
  reporter.set_threads(exec.threads());

  for (const std::string& name : SimulatorNames()) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    std::vector<CellResult> cells;
    double seconds = bench::TimeSeconds([&] {
      cells = SweepMethods(synth.dataset, methods, spec, &exec).ValueOrDie();
    });
    reporter.AddPhase("sweep_" + name, seconds, exec.threads());
    std::printf("%s", RenderSweep("Runtime (s) — " + name, cells,
                                  SweepMetric::kTotalSeconds)
                          .c_str());
    std::printf("\n");
  }
  reporter.WriteJson("BENCH_table5_runtime.json");
  std::printf("Per-phase JSON written to BENCH_table5_runtime.json "
              "(threads=%d)\n\n",
              exec.threads());
  std::printf(
      "Paper shape check: EM-based configurations are the most expensive; "
      "the\nfeature-augmented SLiMFast costs little over Sources-ERM/EM; "
      "Counts is\nnear-free. (Absolute values are smaller than the "
      "paper's DeepDive stack.)\n");
  return 0;
}
