// Table 2: accuracy for predicting the true object values.
//
// Panel A: every method (SLiMFast with optimizer, Sources-ERM, Sources-EM,
// Counts, ACCU, CATD, SSTF) on every simulated dataset at training
// fractions {0.1, 1, 5, 10, 20}%. Panel B: relative difference (%) of each
// method's average accuracy across datasets vs SLiMFast.

#include <cstdio>
#include <map>

#include "baselines/registry.h"
#include "bench_common.h"
#include "eval/harness.h"
#include "synth/simulators.h"
#include "util/strings.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Table 2: object-value accuracy",
                     "Table 2 Panels A and B (Sec. 5.2.1)");

  auto methods_owned = MakeTable2Methods();
  std::vector<FusionMethod*> methods;
  for (auto& m : methods_owned) methods.push_back(m.get());

  SweepSpec spec;
  spec.train_fractions = bench::PaperFractions();
  spec.num_seeds = bench::NumSeeds();

  // method -> fraction -> accuracies across datasets (for Panel B).
  std::map<std::string, std::map<double, std::vector<double>>> panel_b;

  for (const std::string& name : SimulatorNames()) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    auto cells = SweepMethods(synth.dataset, methods, spec).ValueOrDie();
    std::printf("%s", RenderSweep("Panel A — " + name, cells,
                                  SweepMetric::kAccuracy)
                          .c_str());
    std::printf("\n");
    for (const CellResult& cell : cells) {
      panel_b[cell.method][cell.train_fraction].push_back(
          cell.mean_accuracy);
    }
  }

  // Panel B: average accuracy across datasets, relative to SLiMFast.
  std::printf("Panel B — relative difference (%%) vs SLiMFast, averaged "
              "across datasets\n");
  std::printf("%-8s %-10s", "TD(%)", "SLiMFast");
  std::vector<std::string> others;
  for (auto& m : methods_owned) {
    if (m->name() != "SLiMFast") {
      others.push_back(m->name());
      std::printf("%-13s", m->name().c_str());
    }
  }
  std::printf("\n");
  for (double fraction : spec.train_fractions) {
    double slimfast_avg = 0.0;
    {
      const auto& xs = panel_b["SLiMFast"][fraction];
      for (double x : xs) slimfast_avg += x;
      slimfast_avg /= static_cast<double>(xs.size());
    }
    std::printf("%-8s %-10s", FormatDouble(fraction * 100, 1).c_str(),
                FormatDouble(slimfast_avg, 3).c_str());
    for (const std::string& method : others) {
      const auto& xs = panel_b[method][fraction];
      double avg = 0.0;
      for (double x : xs) avg += x;
      avg /= static_cast<double>(xs.size());
      double rel = (avg - slimfast_avg) / slimfast_avg * 100.0;
      std::printf("%-13s", (FormatDouble(rel, 2) + "%").c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: SLiMFast leads on average at every TD level "
      "(all Panel B\nentries negative), with the largest gaps on "
      "correlated (demos) and sparse\n(genomics) instances; ACCU is "
      "competitive only on the independent crowd data.\n");
  return 0;
}
