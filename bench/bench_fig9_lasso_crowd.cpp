// Figure 9 (Appendix E): Lasso path for the features used in Crowd.
//
// Same analysis as Figure 6 but on the Crowd simulator, where the paper
// observes that the labor channel a worker was hired through activates
// first — i.e. is the most predictive of worker accuracy. Our simulator
// plants exactly that structure (the "channel" group has the largest
// accuracy effect), so the channel features should dominate the early
// activations.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/lasso.h"
#include "synth/simulators.h"
#include "util/random.h"
#include "util/strings.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Figure 9: Lasso path on Crowd features",
                     "Figure 9 (Appendix E)");

  auto synth = MakeCrowdSim(/*seed=*/42).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  Rng split_rng(3);
  auto split = MakeSplit(dataset, 0.3, &split_rng).ValueOrDie();

  LassoPathOptions options;
  options.num_penalties = 16;
  options.max_penalty = 0.5;
  options.min_penalty = 1e-4;
  Rng rng(7);
  auto path = ComputeLassoPath(dataset, split, options, &rng).ValueOrDie();

  // Group g0 = channel, g1 = country, g2 = city, g3 = coverage (see
  // MakeCrowdSim).
  const char* group_names[] = {"channel", "country", "city", "coverage"};
  auto group_of = [&](FeatureId k) {
    const std::string& name = path.feature_names[static_cast<size_t>(k)];
    return name[1] - '0';  // "g<d>=v<d>"
  };

  std::printf("First 12 activations along the path:\n");
  std::printf("%-6s %-12s %-14s %s\n", "rank", "group", "feature",
              "final weight");
  auto order = path.ImportanceOrder();
  int32_t channel_in_top = 0;
  for (size_t i = 0; i < std::min<size_t>(12, order.size()); ++i) {
    FeatureId k = order[i];
    int group = group_of(k);
    if (i < 6 && group == 0) ++channel_in_top;
    std::printf("%-6zu %-12s %-14s %+.3f\n", i + 1, group_names[group],
                path.feature_names[static_cast<size_t>(k)].c_str(),
                path.points.back().feature_weights[static_cast<size_t>(k)]);
  }
  std::printf("\nChannel features among the first 6 activations: %d\n",
              channel_in_top);
  std::printf(
      "\nPaper shape check: the labor-channel group (largest planted "
      "effect)\nactivates before country/city noise features, mirroring "
      "the 'clixsense'\nobservation of Appendix E.\n");
  return 0;
}
