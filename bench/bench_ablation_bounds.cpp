// Ablation: empirical validation of the theoretical error-scaling shapes.
//
// Theorem 1/2: with ERM, source-accuracy estimation error should scale
// like sqrt(|K| / |G|) — halving when |G| quadruples, growing with the
// number of (uninformative) features unless L1-regularized.
// Theorem 3:   with EM and no ground truth, error should fall as density
// (p) and the accuracy margin (delta) grow.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/slimfast.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"
#include "util/math.h"
#include "util/random.h"

using namespace slimfast;

namespace {

double ErmSourceError(int32_t labeled_objects, int32_t noise_groups,
                      double l1) {
  SyntheticConfig config;
  config.num_sources = 60;
  config.num_objects = 1200;
  config.density = 0.4;
  config.mean_accuracy = 0.65;
  config.accuracy_spread = 0.25;
  config.num_feature_groups = std::max(1, noise_groups);
  config.values_per_group = 6;
  config.feature_effect = noise_groups > 0 ? 0.0 : 0.1;  // pure noise
  std::vector<double> errors;
  for (int32_t rep = 0; rep < bench::NumSeeds(); ++rep) {
    uint64_t seed = 900 + 13ULL * static_cast<uint64_t>(rep);
    auto synth = GenerateSynthetic(config, seed).ValueOrDie();
    const Dataset& d = synth.dataset;
    double fraction =
        static_cast<double>(labeled_objects) / d.num_objects();
    Rng rng(seed);
    auto split = MakeSplit(d, fraction, &rng).ValueOrDie();
    SlimFastOptions options;
    options.algorithm = Algorithm::kErm;
    options.erm.loss = ErmLoss::kAccuracyLogLoss;  // the Theorem 2 loss
    options.erm.l1 = l1;
    SlimFast method(options, "erm");
    auto output = method.Run(d, split, seed).ValueOrDie();
    errors.push_back(
        WeightedSourceAccuracyError(d, output.source_accuracies)
            .ValueOrDie());
  }
  return Mean(errors);
}

double EmSourceError(double density, double delta) {
  SyntheticConfig config;
  config.num_sources = 60;
  config.num_objects = 800;
  config.density = density;
  config.mean_accuracy = 0.5 + delta + 0.05;
  config.accuracy_spread = 0.05;
  std::vector<double> errors;
  for (int32_t rep = 0; rep < bench::NumSeeds(); ++rep) {
    uint64_t seed = 1200 + 17ULL * static_cast<uint64_t>(rep);
    auto synth = GenerateSynthetic(config, seed).ValueOrDie();
    const Dataset& d = synth.dataset;
    Rng rng(seed);
    auto split = MakeSplit(d, 0.001, &rng).ValueOrDie();
    auto output = MakeSourcesEm()->Run(d, split, seed).ValueOrDie();
    errors.push_back(
        WeightedSourceAccuracyError(d, output.source_accuracies)
            .ValueOrDie());
  }
  return Mean(errors);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: empirical scaling of the error bounds",
                     "Theorems 1-3 (Sec. 4.2)");

  std::printf("[A] ERM error vs |G| (Theorem 2: error ~ sqrt(|K|/|G|))\n");
  std::printf("%-18s %-12s %s\n", "labeled objects", "error",
              "error * sqrt(|G|)");
  for (int32_t g : {50, 200, 800}) {
    double error = ErmSourceError(g, 1, 0.0);
    std::printf("%-18d %-12.4f %.3f\n", g, error,
                error * std::sqrt(static_cast<double>(g)));
  }
  std::printf("(The last column should stay roughly constant.)\n\n");

  std::printf("[B] ERM error vs uninformative features (Theorem 2 + L1)\n");
  std::printf("%-16s %-14s %s\n", "noise features", "error (no L1)",
              "error (L1=0.1)");
  for (int32_t groups : {1, 5, 15}) {
    double plain = ErmSourceError(200, groups, 0.0);
    double lasso = ErmSourceError(200, groups, 0.1);
    std::printf("%-16d %-14.4f %.4f\n", groups * 6, plain, lasso);
  }
  std::printf("(L1 should dampen the growth with feature count.)\n\n");

  std::printf("[C] EM error vs density and delta (Theorem 3)\n");
  std::printf("%-12s %-12s %s\n", "density p", "delta", "error");
  for (double density : {0.02, 0.1, 0.4}) {
    for (double delta : {0.05, 0.2}) {
      std::printf("%-12.2f %-12.2f %.4f\n", density, delta,
                  EmSourceError(density, delta));
    }
  }
  std::printf("(Error should fall toward the lower-right: dense instances "
              "with accurate sources.)\n");
  return 0;
}
