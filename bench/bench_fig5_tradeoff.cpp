// Figure 5: the ERM/EM tradeoff space.
//
// Sweeps the three instance axes — training data, average source accuracy,
// observation density — over a grid of synthetic instances and reports
// which algorithm wins each cell, regenerating the paper's qualitative
// tradeoff map.

#include <cstdio>

#include "bench_common.h"
#include "core/slimfast.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"
#include "util/math.h"
#include "util/random.h"

using namespace slimfast;

namespace {

const char* Winner(double td, double accuracy, double density) {
  SyntheticConfig config;
  config.num_sources = 400;
  config.num_objects = 400;
  config.mean_accuracy = accuracy;
  config.accuracy_spread = 0.05;
  config.density = density;
  std::vector<double> em_scores;
  std::vector<double> erm_scores;
  for (int32_t rep = 0; rep < bench::NumSeeds(); ++rep) {
    uint64_t seed = 500 + 31ULL * static_cast<uint64_t>(rep);
    auto synth = GenerateSynthetic(config, seed).ValueOrDie();
    Rng rng(seed);
    auto split = MakeSplit(synth.dataset, td, &rng).ValueOrDie();
    auto em = MakeSourcesEm()->Run(synth.dataset, split, seed).ValueOrDie();
    auto erm =
        MakeSourcesErm()->Run(synth.dataset, split, seed).ValueOrDie();
    em_scores.push_back(
        TestAccuracy(synth.dataset, em.predicted_values, split)
            .ValueOrDie());
    erm_scores.push_back(
        TestAccuracy(synth.dataset, erm.predicted_values, split)
            .ValueOrDie());
  }
  double em = Mean(em_scores);
  double erm = Mean(erm_scores);
  if (em > erm + 0.01) return "EM";
  if (erm > em + 0.01) return "ERM";
  return "-";
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 5: the ERM/EM tradeoff space",
                     "Figure 5 (Sec. 4.1)");
  std::printf("cells: winner by >1%% absolute accuracy, '-' = tie\n\n");
  std::printf("%-16s %-16s %-14s %s\n", "training data", "src accuracy",
              "density low", "density high");
  for (double td : {0.02, 0.40}) {
    for (double accuracy : {0.5, 0.8}) {
      const char* low = Winner(td, accuracy, 0.01);
      const char* high = Winner(td, accuracy, 0.08);
      std::printf("%-16s %-16s %-14s %s\n", td < 0.1 ? "low" : "high",
                  accuracy < 0.7 ? "~0.5" : "high", low, high);
    }
  }
  std::printf(
      "\nPaper shape check (Figure 5): EM owns the high-accuracy corner "
      "regardless of\ndensity; ERM owns the near-random-accuracy rows "
      "(where unlabeled conflicts carry\nno information) once training "
      "data is available. Note our Bernoulli-MLE EM is\nstronger than the "
      "paper's, so EM's region extends further than in their Figure 5\n"
      "(see EXPERIMENTS.md).\n");
  return 0;
}
