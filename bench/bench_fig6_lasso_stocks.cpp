// Figure 6: Lasso path for the features used in Stocks.
//
// Sweeps the L1 penalty from strong to weak on the Stocks simulator and
// prints (a) when each feature group first activates and (b) the feature
// weights at a few points along the path — the data behind the paper's
// Lasso-path plot, where daily-usage statistics activate first and
// "TotalSitesLinkingIn" (PageRank proxy) is unimportant.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/lasso.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Figure 6: Lasso path on Stocks features",
                     "Figure 6 (Sec. 5.3.1)");

  auto synth = MakeStocksSim(/*seed=*/42).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  Rng split_rng(3);
  auto split = MakeSplit(dataset, 0.3, &split_rng).ValueOrDie();

  LassoPathOptions options;
  options.num_penalties = 16;
  options.max_penalty = 0.5;
  options.min_penalty = 1e-4;
  Rng rng(7);
  auto path = ComputeLassoPath(dataset, split, options, &rng).ValueOrDie();

  std::printf("Activation order (earlier = more important, Figure 6's "
              "reading):\n");
  std::printf("%-6s %-18s %-12s %s\n", "rank", "feature", "activates at",
              "final weight");
  auto order = path.ImportanceOrder();
  for (size_t i = 0; i < std::min<size_t>(15, order.size()); ++i) {
    FeatureId k = order[i];
    int32_t idx = path.activation_index[static_cast<size_t>(k)];
    std::printf("%-6zu %-18s lambda=%-6.4f %+.3f\n", i + 1,
                path.feature_names[static_cast<size_t>(k)].c_str(),
                path.points[static_cast<size_t>(idx)].penalty,
                path.points.back().feature_weights[static_cast<size_t>(k)]);
  }

  std::printf("\nSparsity along the path (lambda, mu, #nonzero of %zu):\n",
              path.feature_names.size());
  for (const LassoPathPoint& point : path.points) {
    std::printf("  lambda=%-8.4f mu=%-6.3f nonzero=%lld\n", point.penalty,
                point.mu, static_cast<long long>(point.num_nonzero));
  }
  std::printf(
      "\nPaper shape check: a small subset of feature values activates "
      "early and grows\nin magnitude as the penalty relaxes; most features "
      "stay at exactly zero until\nthe penalty is weak (L1 sparsity, "
      "Sec. 4.2.1).\n");
  return 0;
}
