// Ablation: robustness of the optimizer to the threshold tau
// (the Sec. 5.2.3 robustness study, tau in {0.01, 0.1, 0.5, 1.0}).

#include <cstdio>

#include "bench_common.h"
#include "core/compilation.h"
#include "core/optimizer.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Ablation: optimizer decisions across tau",
                     "Sec. 5.2.3 robustness study");

  const double taus[] = {0.01, 0.1, 0.5, 1.0};
  std::printf("%-10s %-7s", "dataset", "TD(%)");
  for (double tau : taus) std::printf(" tau=%-6.2f", tau);
  std::printf("\n");

  for (const std::string& name : SimulatorNames()) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    const Dataset& dataset = synth.dataset;
    auto compiled = Compile(dataset, ModelConfig{}).ValueOrDie();
    for (double fraction : bench::PaperFractions()) {
      Rng rng(11);
      auto split = MakeSplit(dataset, fraction, &rng).ValueOrDie();
      std::printf("%-10s %-7.1f", name.c_str(), fraction * 100);
      for (double tau : taus) {
        OptimizerOptions options;
        options.tau = tau;
        auto decision = DecideAlgorithm(
            dataset, split, compiled.layout.num_params, options);
        std::printf(" %-10s",
                    decision.algorithm == Algorithm::kErm ? "ERM" : "EM");
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape check: decisions are stable across two orders of "
      "magnitude of tau\n(the bound fast-path only fires for extreme "
      "label volumes).\n");
  return 0;
}
