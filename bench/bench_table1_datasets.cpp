// Table 1: statistics of the four (simulated) evaluation datasets.
//
// Prints the same parameters the paper reports — source/object counts,
// observations, feature values, average accuracy, observation densities —
// for our Table-1-matched simulators, side by side with the paper's
// published numbers.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "data/stats.h"
#include "eval/table.h"
#include "synth/simulators.h"
#include "util/strings.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Table 1: dataset parameters",
                     "Table 1 (Sec. 5.1) of the paper");

  struct PaperRow {
    const char* param;
    const char* stocks;
    const char* demos;
    const char* crowd;
    const char* genomics;
  };
  const PaperRow paper[] = {
      {"# Sources (paper)", "34", "522", "102", "2750"},
      {"# Objects (paper)", "907", "3105", "992", "571"},
      {"# Observations (paper)", "30763", "27736", "19840", "3052"},
      {"# Feature Values (paper)", "70", "341", "171", "16358"},
      {"Avg. Src. Acc. (paper)", "<0.5", "0.604", "0.540", "-"},
      {"Avg. Obs/Obj (paper)", "33.9", "15.7", "20", "5.3"},
  };

  std::vector<DatasetStats> stats;
  for (const std::string& name : SimulatorNames()) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    stats.push_back(ComputeStats(synth.dataset));
  }

  TablePrinter table({"Parameter", "Stocks", "Demos", "Crowd", "Genomics"});
  table.SetTitle("Measured (simulators, seed 42) vs paper");
  auto fmt_int = [](int64_t v) { return std::to_string(v); };
  table.AddRow({"# Sources", fmt_int(stats[0].num_sources),
                fmt_int(stats[1].num_sources), fmt_int(stats[2].num_sources),
                fmt_int(stats[3].num_sources)});
  table.AddRow({"# Objects", fmt_int(stats[0].num_objects),
                fmt_int(stats[1].num_objects), fmt_int(stats[2].num_objects),
                fmt_int(stats[3].num_objects)});
  table.AddRow({"# Observations", fmt_int(stats[0].num_observations),
                fmt_int(stats[1].num_observations),
                fmt_int(stats[2].num_observations),
                fmt_int(stats[3].num_observations)});
  table.AddRow({"# Feature Values", fmt_int(stats[0].num_feature_values),
                fmt_int(stats[1].num_feature_values),
                fmt_int(stats[2].num_feature_values),
                fmt_int(stats[3].num_feature_values)});
  auto fmt_acc = [](const DatasetStats& s) {
    return s.avg_source_accuracy_reliable
               ? FormatDouble(s.avg_source_accuracy, 3)
               : std::string("-");
  };
  table.AddRow({"Avg. Src. Accuracy", fmt_acc(stats[0]), fmt_acc(stats[1]),
                fmt_acc(stats[2]), fmt_acc(stats[3])});
  table.AddRow({"Avg. Obs per Object",
                FormatDouble(stats[0].avg_obs_per_object, 1),
                FormatDouble(stats[1].avg_obs_per_object, 1),
                FormatDouble(stats[2].avg_obs_per_object, 1),
                FormatDouble(stats[3].avg_obs_per_object, 1)});
  table.AddRow({"Avg. Obs per Source",
                FormatDouble(stats[0].avg_obs_per_source, 2),
                FormatDouble(stats[1].avg_obs_per_source, 2),
                FormatDouble(stats[2].avg_obs_per_source, 2),
                FormatDouble(stats[3].avg_obs_per_source, 2)});
  table.AddRow({"Density p", FormatDouble(stats[0].density, 4),
                FormatDouble(stats[1].density, 4),
                FormatDouble(stats[2].density, 4),
                FormatDouble(stats[3].density, 4)});
  std::printf("%s\n", table.ToString().c_str());

  TablePrinter ref({"Parameter", "Stocks", "Demos", "Crowd", "Genomics"});
  ref.SetTitle("Paper-reported values (for comparison)");
  for (const PaperRow& row : paper) {
    ref.AddRow({row.param, row.stocks, row.demos, row.crowd, row.genomics});
  }
  std::printf("%s", ref.ToString().c_str());
  std::printf(
      "\nNote: Genomics feature values are simulated at 540 (author-group "
      "proxy)\ninstead of 16358 individual author indicators; see "
      "DESIGN.md substitutions.\n");
  return 0;
}
