// Figure 7: source-quality initialization — predicting the accuracy of
// unseen sources from domain features alone.
//
// For Stocks, Demos, and Crowd: restrict SLiMFast's input to a percentage
// of the sources (25/40/50/75%), train, then predict the accuracy of the
// held-out sources using only their features and report the mean absolute
// error against their empirical accuracies.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/slimfast.h"
#include "core/source_init.h"
#include "synth/simulators.h"
#include "util/math.h"
#include "util/random.h"

using namespace slimfast;

namespace {

/// Restricts observations to sources [0, keep); ids preserved so feature
/// rows remain addressable for the held-out sources.
Dataset RestrictSources(const Dataset& dataset, int32_t keep) {
  DatasetBuilder builder(dataset.name() + "-restricted",
                         dataset.num_sources(), dataset.num_objects(),
                         dataset.num_values());
  for (const Observation& obs : dataset.observations()) {
    if (obs.source >= keep) continue;
    SLIMFAST_CHECK_OK(
        builder.AddObservation(obs.object, obs.source, obs.value));
  }
  for (ObjectId o : dataset.ObjectsWithTruth()) {
    SLIMFAST_CHECK_OK(builder.SetTruth(o, dataset.Truth(o)));
  }
  // Copy the full feature space (including held-out sources' rows).
  FeatureSpace* fs = builder.mutable_features();
  for (FeatureId k = 0; k < dataset.features().num_features(); ++k) {
    fs->RegisterFeature(dataset.features().FeatureName(k));
  }
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    for (FeatureId k : dataset.features().FeaturesOf(s)) {
      SLIMFAST_CHECK_OK(fs->SetFeature(s, k));
    }
  }
  return std::move(builder).Build().ValueOrDie();
}

double UnseenSourceError(const Dataset& full, int32_t keep, uint64_t seed) {
  Dataset restricted = RestrictSources(full, keep);
  Rng rng(seed);
  auto split = MakeSplit(restricted, 0.2, &rng).ValueOrDie();
  // Fit the feature -> accuracy mapping on the Definition 7 loss: the
  // object-posterior loss optimizes prediction, not calibration, and the
  // cold-start predictor needs calibrated feature weights.
  SlimFastOptions options;
  options.erm.loss = ErmLoss::kAccuracyLogLoss;
  auto fit = MakeSlimFastErm(options)->Fit(restricted, split, seed).ValueOrDie();
  auto predictor =
      SourceQualityPredictor::FromModel(fit.model).ValueOrDie();

  double error_sum = 0.0;
  int64_t count = 0;
  for (SourceId s = keep; s < full.num_sources(); ++s) {
    auto empirical = full.EmpiricalSourceAccuracy(s);
    if (!empirical.ok()) continue;
    error_sum += std::fabs(predictor.PredictAccuracyOf(full, s) -
                           empirical.ValueOrDie());
    ++count;
  }
  return count > 0 ? error_sum / static_cast<double>(count) : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 7: accuracy prediction for unseen sources",
                     "Figure 7 (Sec. 5.3.2)");
  std::printf("%-10s %-10s %-10s %-10s %s\n", "dataset", "25%", "40%",
              "50%", "75%");
  for (const std::string name : {"stocks", "demos", "crowd"}) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    const Dataset& dataset = synth.dataset;
    std::printf("%-10s", name.c_str());
    for (double used : {0.25, 0.40, 0.50, 0.75}) {
      std::vector<double> errors;
      for (int32_t rep = 0; rep < bench::NumSeeds(); ++rep) {
        int32_t keep = static_cast<int32_t>(used * dataset.num_sources());
        errors.push_back(
            UnseenSourceError(dataset, keep,
                              42 + 7919ULL * static_cast<uint64_t>(rep)));
      }
      std::printf(" %-9.3f", Mean(errors));
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: the estimation error for unseen sources "
      "decreases as more\nsources are revealed during training "
      "(Figure 7).\n");
  return 0;
}
