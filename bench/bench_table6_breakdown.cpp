// Table 6: end-to-end vs learning-and-inference-only runtime on Genomics.
//
// Splits SLiMFast / Sources-ERM / Sources-EM runtime into compilation
// (building the log-linear structure — the analogue of DeepDive loading
// data and grounding the factor graph) versus learning + inference.

#include <cstdio>

#include "bench_common.h"
#include "core/slimfast.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  bench::PrintHeader(
      "Table 6: end-to-end vs learning-and-inference-only runtime",
      "Table 6 (Appendix C), Genomics");

  auto synth = MakeGenomicsSim(/*seed=*/42).ValueOrDie();
  const Dataset& dataset = synth.dataset;

  std::printf("%-8s %-14s %-12s %-12s %-12s %s\n", "TD(%)", "method",
              "total (s)", "compile (s)", "learn (s)", "infer (s)");
  for (double fraction : bench::PaperFractions()) {
    for (const char* name : {"SLiMFast", "Sources-ERM", "Sources-EM"}) {
      auto method = [&]() -> std::unique_ptr<SlimFast> {
        if (std::string(name) == "SLiMFast") return MakeSlimFast();
        if (std::string(name) == "Sources-ERM") return MakeSourcesErm();
        return MakeSourcesEm();
      }();
      Rng rng(42);
      auto split = MakeSplit(dataset, fraction, &rng).ValueOrDie();
      auto output = method->Run(dataset, split, 42).ValueOrDie();
      std::printf("%-8.1f %-14s %-12.4f %-12.4f %-12.4f %.4f\n",
                  fraction * 100, name, output.TotalSeconds(),
                  output.compile_seconds, output.learn_seconds,
                  output.infer_seconds);
    }
  }
  std::printf(
      "\nPaper shape check: compilation dominates neither here nor in "
      "learning-only\ncolumns of the paper's Table 6 once data is "
      "in memory; learning is the bulk\nof the cost and EM configurations "
      "exceed ERM ones.\n");
  return 0;
}
