// Table 4: evaluating SLiMFast's optimizer at choosing between EM and ERM.
//
// For every dataset and training fraction we run SLiMFast-ERM and
// SLiMFast-EM, record which one actually wins, and compare against the
// optimizer's decision (tau = 0.1, as in the paper).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/compilation.h"
#include "core/optimizer.h"
#include "core/slimfast.h"
#include "eval/metrics.h"
#include "synth/simulators.h"
#include "util/math.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Table 4: optimizer decisions (EM vs ERM)",
                     "Table 4 (Sec. 5.2.3), tau = 0.1");

  std::printf("%-10s %-7s %-10s %-9s %-9s %-9s %s\n", "dataset", "TD(%)",
              "decision", "correct", "ERM acc", "EM acc", "diff(%)");

  int32_t correct_count = 0;
  int32_t total_count = 0;
  for (const std::string& name : SimulatorNames()) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    const Dataset& dataset = synth.dataset;
    auto compiled = Compile(dataset, ModelConfig{}).ValueOrDie();

    for (double fraction : bench::PaperFractions()) {
      std::vector<double> erm_scores;
      std::vector<double> em_scores;
      Algorithm decision = Algorithm::kErm;
      for (int32_t rep = 0; rep < bench::NumSeeds(); ++rep) {
        uint64_t seed = 42 + 1000003ULL * static_cast<uint64_t>(rep);
        Rng rng(seed);
        auto split = MakeSplit(dataset, fraction, &rng).ValueOrDie();
        if (rep == 0) {
          decision = DecideAlgorithm(dataset, split,
                                     compiled.layout.num_params,
                                     OptimizerOptions{})
                         .algorithm;
        }
        auto erm = MakeSlimFastErm()->Run(dataset, split, seed).ValueOrDie();
        auto em = MakeSlimFastEm()->Run(dataset, split, seed).ValueOrDie();
        erm_scores.push_back(
            TestAccuracy(dataset, erm.predicted_values, split).ValueOrDie());
        em_scores.push_back(
            TestAccuracy(dataset, em.predicted_values, split).ValueOrDie());
      }
      double erm_acc = Mean(erm_scores);
      double em_acc = Mean(em_scores);
      // "Correct" uses the paper's convention: ties (within 0.5%) count
      // as correct for either decision.
      Algorithm actual_best =
          erm_acc >= em_acc ? Algorithm::kErm : Algorithm::kEm;
      double diff = std::fabs(erm_acc - em_acc) /
                    std::max(1e-9, std::min(erm_acc, em_acc)) * 100.0;
      bool correct = decision == actual_best || diff < 0.5;
      correct_count += correct ? 1 : 0;
      ++total_count;
      std::printf("%-10s %-7.1f %-10s %-9s %-9.3f %-9.3f %.1f\n",
                  name.c_str(), fraction * 100,
                  decision == Algorithm::kErm ? "ERM" : "EM",
                  correct ? "Y" : "N", erm_acc, em_acc, diff);
    }
  }
  std::printf("\nOptimizer correct on %d / %d configurations "
              "(paper: 19 / 20).\n",
              correct_count, total_count);
  return 0;
}
