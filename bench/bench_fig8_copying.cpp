// Figure 8 (Appendix D): detecting source copying on Demonstrations.
//
// Compares SLiMFast without domain features, with and without the
// pairwise copying extension, over training fractions {1, 5, 10, 20}%,
// and lists the strongest learned copying relations together with whether
// the pair really belongs to the same simulated copy cluster.

#include <cstdio>

#include "baselines/accu.h"
#include "bench_common.h"
#include "core/copying.h"
#include "core/slimfast.h"
#include "eval/metrics.h"
#include "synth/simulators.h"
#include "util/math.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  bench::PrintHeader("Figure 8: source copying on Demonstrations",
                     "Figure 8 + copying examples (Appendix D)");

  auto synth = MakeDemosSim(/*seed=*/42).ValueOrDie();
  const Dataset& dataset = synth.dataset;

  SlimFastOptions plain_options;
  plain_options.model.use_feature_weights = false;
  plain_options.algorithm = Algorithm::kEm;

  SlimFastOptions copy_options = plain_options;
  copy_options.model.use_copying_features = true;
  copy_options.model.copying_min_agreements = 15;

  std::printf("%-8s %-12s %-14s %s\n", "TD(%)", "ACCU", "w/o copying",
              "w. copying");
  for (double fraction : {0.01, 0.05, 0.10, 0.20}) {
    std::vector<double> accu_scores;
    std::vector<double> plain_scores;
    std::vector<double> copy_scores;
    for (int32_t rep = 0; rep < bench::NumSeeds(); ++rep) {
      uint64_t seed = 42 + 53ULL * static_cast<uint64_t>(rep);
      Rng rng(seed);
      auto split = MakeSplit(dataset, fraction, &rng).ValueOrDie();
      Accu accu;
      SlimFast plain(plain_options, "plain");
      SlimFast with_copy(copy_options, "copying");
      auto accu_out = accu.Run(dataset, split, seed).ValueOrDie();
      auto plain_out = plain.Run(dataset, split, seed).ValueOrDie();
      auto copy_out = with_copy.Run(dataset, split, seed).ValueOrDie();
      accu_scores.push_back(
          TestAccuracy(dataset, accu_out.predicted_values, split)
              .ValueOrDie());
      plain_scores.push_back(
          TestAccuracy(dataset, plain_out.predicted_values, split)
              .ValueOrDie());
      copy_scores.push_back(
          TestAccuracy(dataset, copy_out.predicted_values, split)
              .ValueOrDie());
    }
    std::printf("%-8.1f %-12.3f %-14.3f %.3f\n", fraction * 100,
                Mean(accu_scores), Mean(plain_scores), Mean(copy_scores));
  }

  // Inspect the learned copying relations: fit the extended model with
  // ERM on 20% ground truth (EM's accuracy-loss M-step does not touch the
  // pairwise parameters, so the object-likelihood ERM fit is the one that
  // identifies copying weights).
  Rng rng(42);
  auto split = MakeSplit(dataset, 0.20, &rng).ValueOrDie();
  SlimFastOptions detect_options = copy_options;
  detect_options.algorithm = Algorithm::kErm;
  SlimFast with_copy(detect_options, "copying");
  auto fit = with_copy.Fit(dataset, split, 42).ValueOrDie();
  auto relations = TopCopyingRelations(fit.model, 10);
  std::printf("\nStrongest learned copying relations "
              "(same simulated cluster?):\n");
  std::printf("%-10s %-10s %-12s %s\n", "source A", "source B", "weight",
              "same cluster");
  int32_t in_cluster = 0;
  for (const CopyingRelation& r : relations) {
    bool same =
        synth.copy_cluster_of[static_cast<size_t>(r.source_a)] >= 0 &&
        synth.copy_cluster_of[static_cast<size_t>(r.source_a)] ==
            synth.copy_cluster_of[static_cast<size_t>(r.source_b)];
    if (same) ++in_cluster;
    std::printf("%-10d %-10d %-12.4f %s\n", r.source_a, r.source_b,
                r.weight, same ? "yes" : "no");
  }
  std::printf("\n%d / %zu of the strongest relations are genuine copy "
              "pairs.\n",
              in_cluster, relations.size());
  std::printf(
      "\nPaper shape check: the generative ACCU is hurt by correlated "
      "sources while the\ndiscriminative model is not, and the strongest "
      "pairwise copying weights identify\ntruly correlated sources "
      "(allafrica.com / itnewsafrica.com in Appendix D).\nIn our "
      "reproduction the per-source discriminative weights already absorb "
      "most of\nthe copying correction, so the explicit pairwise factors "
      "add interpretability\n(the table above) more than accuracy — see "
      "EXPERIMENTS.md.\n");
  return 0;
}
