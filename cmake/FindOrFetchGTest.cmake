# Provides GTest::gtest_main. Prefers the GoogleTest sources shipped with the
# system (Debian's libgtest-dev puts them under /usr/src/googletest) so that
# configuring works offline; falls back to downloading a pinned release when
# they are absent.

include(FetchContent)

if(EXISTS /usr/src/googletest/CMakeLists.txt)
  FetchContent_Declare(googletest SOURCE_DIR /usr/src/googletest)
else()
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
endif()

set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
