// Genomics fusion: the paper's motivating application (Sec. 1).
//
// 2750 articles each contribute ~1 claim about gene-disease associations —
// far too little to estimate per-article accuracy from conflicts alone.
// This example shows how PubMed-style metadata features rescue fusion:
// we run SLiMFast with and without domain features at several amounts of
// curated ground truth and print the accuracy gap, then inspect which
// feature weights the model found most informative.
//
// Build & run:  ./build/examples/genomics_fusion

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/slimfast.h"
#include "eval/metrics.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  auto synth = MakeGenomicsSim(/*seed=*/2024).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  std::printf("Simulated GAD-style dataset: %d articles, %d gene-disease "
              "pairs, %lld claims\n\n",
              dataset.num_sources(), dataset.num_objects(),
              static_cast<long long>(dataset.num_observations()));

  std::printf("%-8s %-18s %-18s %s\n", "TD(%)", "SLiMFast(features)",
              "Sources only", "feature gain");
  for (double fraction : {0.01, 0.05, 0.10, 0.20}) {
    Rng rng(7);
    auto split = MakeSplit(dataset, fraction, &rng).ValueOrDie();
    auto with_features =
        MakeSlimFast()->Run(dataset, split, 3).ValueOrDie();
    auto sources_only =
        MakeSourcesEm()->Run(dataset, split, 3).ValueOrDie();
    double acc_with =
        TestAccuracy(dataset, with_features.predicted_values, split)
            .ValueOrDie();
    double acc_without =
        TestAccuracy(dataset, sources_only.predicted_values, split)
            .ValueOrDie();
    std::printf("%-8.1f %-18.3f %-18.3f %+.3f\n", fraction * 100, acc_with,
                acc_without, acc_with - acc_without);
  }

  // Which metadata features drive article accuracy?
  Rng rng(7);
  auto split = MakeSplit(dataset, 0.20, &rng).ValueOrDie();
  auto fit = MakeSlimFast()->Fit(dataset, split, 3).ValueOrDie();
  const ParamLayout& layout = fit.model.layout();
  std::vector<std::pair<double, FeatureId>> ranked;
  for (int32_t k = 0; k < layout.num_feature_params; ++k) {
    double w =
        fit.model.weights()[static_cast<size_t>(layout.feature_offset + k)];
    ranked.emplace_back(w, k);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return std::abs(a.first) > std::abs(b.first);
            });
  std::printf("\nTop-10 most informative metadata features:\n");
  std::printf("%-14s %s\n", "weight", "feature");
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    std::printf("%+-14.4f %s\n", ranked[i].first,
                dataset.features().FeatureName(ranked[i].second).c_str());
  }
  return 0;
}
