// Quickstart: the paper's Figure 1 scenario end to end.
//
// Three scientific articles make conflicting claims about whether two genes
// are associated with Parkinson disease. We build the fusion instance,
// reveal one ground-truth label, run SLiMFast, and print the estimated
// true values and per-article accuracies.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/slimfast.h"
#include "data/dataset.h"
#include "data/split.h"

using namespace slimfast;

int main() {
  // --- 1. Describe the instance: 3 sources, 2 objects, binary values. ---
  // Values: 0 = "not associated", 1 = "associated".
  DatasetBuilder builder("figure1", /*num_sources=*/3, /*num_objects=*/2,
                         /*num_values=*/2);

  // Object 0 = (GIGYF2, Parkinson).
  SLIMFAST_CHECK_OK(builder.AddObservation(0, /*source=*/0, 0));  // A1: no
  SLIMFAST_CHECK_OK(builder.AddObservation(0, /*source=*/1, 1));  // A2: yes
  SLIMFAST_CHECK_OK(builder.AddObservation(0, /*source=*/2, 0));  // A3: no
  // Object 1 = (GBA, Parkinson).
  SLIMFAST_CHECK_OK(builder.AddObservation(1, /*source=*/0, 1));  // A1: yes
  SLIMFAST_CHECK_OK(builder.AddObservation(1, /*source=*/2, 1));  // A3: yes

  // Optional domain features describing the articles (Sec. 3.1).
  FeatureSpace* features = builder.mutable_features();
  FeatureId recent = features->RegisterFeature("pub_year>=2008");
  FeatureId cited = features->RegisterFeature("citations=high");
  SLIMFAST_CHECK_OK(features->SetFeature(0, cited));
  SLIMFAST_CHECK_OK(features->SetFeature(1, recent));
  SLIMFAST_CHECK_OK(features->SetFeature(2, recent));
  SLIMFAST_CHECK_OK(features->SetFeature(2, cited));

  // Ground truth we happen to know: GBA *is* associated with Parkinson.
  SLIMFAST_CHECK_OK(builder.SetTruth(1, 1));
  // (For evaluation purposes we also know object 0's answer.)
  SLIMFAST_CHECK_OK(builder.SetTruth(0, 0));

  Dataset dataset = std::move(builder).Build().ValueOrDie();

  // --- 2. Reveal the GBA label as training data. ---
  TrainTestSplit split;
  split.is_train.assign(static_cast<size_t>(dataset.num_objects()), 0);
  split.train_objects = {1};
  split.is_train[1] = 1;
  split.test_objects = {0};

  // --- 3. Run SLiMFast (the optimizer picks ERM or EM automatically). ---
  auto method = MakeSlimFast();
  FusionOutput output = method->Run(dataset, split, /*seed=*/42).ValueOrDie();

  std::printf("SLiMFast decision: %s\n\n", output.detail.c_str());
  std::printf("%-24s %-12s %s\n", "object", "estimated", "truth");
  const char* names[] = {"(GIGYF2, Parkinson)", "(GBA, Parkinson)"};
  for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
    std::printf("%-24s %-12s %s\n", names[o],
                output.predicted_values[static_cast<size_t>(o)] == 1
                    ? "associated"
                    : "not assoc.",
                dataset.Truth(o) == 1 ? "associated" : "not assoc.");
  }
  std::printf("\n%-10s %s\n", "article", "estimated accuracy");
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    std::printf("Article %d  %.3f\n", s + 1,
                output.source_accuracies[static_cast<size_t>(s)]);
  }
  return 0;
}
