// Optimizer tour: watch SLiMFast's optimizer (Sec. 4.3) choose between
// ERM and EM across the four simulated datasets and increasing amounts of
// ground truth — the decision process behind Table 4 and Figure 5.
//
// Build & run:  ./build/examples/optimizer_tour

#include <cstdio>

#include "core/compilation.h"
#include "core/optimizer.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  std::printf("%-10s %-7s %-9s %-11s %-11s %-9s %s\n", "dataset", "TD(%)",
              "est.acc", "ERM units", "EM units", "bound", "decision");
  for (const std::string& name : SimulatorNames()) {
    auto synth = MakeSimulatorByName(name, /*seed=*/42).ValueOrDie();
    const Dataset& dataset = synth.dataset;
    auto compiled = Compile(dataset, ModelConfig{}).ValueOrDie();
    for (double fraction : {0.001, 0.01, 0.05, 0.10, 0.20}) {
      Rng rng(11);
      auto split = MakeSplit(dataset, fraction, &rng).ValueOrDie();
      OptimizerDecision decision = DecideAlgorithm(
          dataset, split, compiled.layout.num_params, OptimizerOptions{});
      std::printf("%-10s %-7.1f %-9.3f %-11.0f %-11.0f %-9.2f %s%s\n",
                  name.c_str(), fraction * 100,
                  decision.estimated_avg_accuracy, decision.erm_units,
                  decision.em_units, decision.erm_bound,
                  decision.algorithm == Algorithm::kErm ? "ERM" : "EM",
                  decision.bound_fast_path ? " (fast path)" : "");
    }
  }
  std::printf(
      "\nReading the tradeoff (Figure 5): adversarial/low-agreement "
      "instances (stocks) yield\nno EM units, so any ground truth picks "
      "ERM; dense accurate instances (demos) favor EM\nuntil labels "
      "accumulate; sparse instances sit in between.\n");
  return 0;
}
