// Source selection: buying only the sources worth paying for.
//
// The paper motivates low-error source-accuracy estimates partly through
// data acquisition (Dong et al., "Less is more" [12]): given per-source
// accuracy estimates, buy the top-k sources and fuse only their data.
// This example estimates accuracies on the Stocks simulator with SLiMFast,
// then sweeps k and reports the fused accuracy of the purchased subset —
// showing that a handful of well-chosen sources beats buying everything.
//
// Build & run:  ./build/examples/source_selection

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "baselines/majority.h"
#include "core/slimfast.h"
#include "eval/metrics.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

namespace {

/// Restricts a dataset to the claims of `keep` sources (ids preserved).
Dataset FilterSources(const Dataset& dataset,
                      const std::vector<SourceId>& keep) {
  std::vector<uint8_t> kept(static_cast<size_t>(dataset.num_sources()), 0);
  for (SourceId s : keep) kept[static_cast<size_t>(s)] = 1;
  DatasetBuilder builder(dataset.name() + "-subset", dataset.num_sources(),
                         dataset.num_objects(), dataset.num_values());
  for (const Observation& obs : dataset.observations()) {
    if (!kept[static_cast<size_t>(obs.source)]) continue;
    SLIMFAST_CHECK_OK(
        builder.AddObservation(obs.object, obs.source, obs.value));
  }
  for (ObjectId o : dataset.ObjectsWithTruth()) {
    SLIMFAST_CHECK_OK(builder.SetTruth(o, dataset.Truth(o)));
  }
  return std::move(builder).Build().ValueOrDie();
}

}  // namespace

int main() {
  auto synth = MakeStocksSim(/*seed=*/7).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  std::printf("Simulated stock-volume dataset: %d aggregators, %d stocks\n",
              dataset.num_sources(), dataset.num_objects());

  Rng rng(3);
  auto split = MakeSplit(dataset, 0.05, &rng).ValueOrDie();

  // Estimate source accuracies with 5% ground truth.
  auto output = MakeSlimFast()->Run(dataset, split, 17).ValueOrDie();

  // Rank sources by estimated accuracy.
  std::vector<SourceId> order(static_cast<size_t>(dataset.num_sources()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](SourceId a, SourceId b) {
    return output.source_accuracies[static_cast<size_t>(a)] >
           output.source_accuracies[static_cast<size_t>(b)];
  });

  std::printf("\n%-12s %-22s %s\n", "k bought", "fused accuracy (MV)",
              "mean est. accuracy of subset");
  for (int32_t k : {3, 5, 10, 20, 34}) {
    std::vector<SourceId> subset(order.begin(), order.begin() + k);
    Dataset filtered = FilterSources(dataset, subset);
    MajorityVote fuse;
    auto fused = fuse.Run(filtered, split, 1).ValueOrDie();
    double accuracy =
        TestAccuracy(filtered, fused.predicted_values, split).ValueOrDie();
    double mean_est = 0.0;
    for (SourceId s : subset) {
      mean_est += output.source_accuracies[static_cast<size_t>(s)];
    }
    std::printf("%-12d %-22.3f %.3f\n", k, accuracy,
                mean_est / static_cast<double>(k));
  }
  std::printf("\nA small, accuracy-ranked subset of sources fuses better "
              "than the full noisy pool.\n");
  return 0;
}
