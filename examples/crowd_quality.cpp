// Crowd worker quality: fusion of crowdsourced sentiment labels.
//
// 102 workers label 992 weather tweets (20 workers per tweet, 4 classes).
// This example runs SLiMFast, compares estimated worker accuracies against
// held-out empirical accuracies, and demonstrates source-quality
// initialization (Sec. 5.3.2): predicting the accuracy of workers the
// model has never seen, from their profile features alone.
//
// Build & run:  ./build/examples/crowd_quality

#include <cmath>
#include <cstdio>

#include "core/slimfast.h"
#include "core/source_init.h"
#include "eval/metrics.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  auto synth = MakeCrowdSim(/*seed=*/99).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  std::printf("Simulated CrowdFlower-style dataset: %d workers, %d tweets\n\n",
              dataset.num_sources(), dataset.num_objects());

  Rng rng(5);
  auto split = MakeSplit(dataset, 0.05, &rng).ValueOrDie();
  auto method = MakeSlimFast();
  auto fit = method->Fit(dataset, split, 11).ValueOrDie();
  auto output = method->Run(dataset, split, 11).ValueOrDie();

  double accuracy =
      TestAccuracy(dataset, output.predicted_values, split).ValueOrDie();
  double source_error =
      WeightedSourceAccuracyError(dataset, output.source_accuracies)
          .ValueOrDie();
  std::printf("Optimizer: %s\n", output.detail.c_str());
  std::printf("Tweet-label accuracy (5%% ground truth): %.3f\n", accuracy);
  std::printf("Worker-accuracy estimation error:        %.3f\n\n",
              source_error);

  std::printf("Ten workers, estimated vs empirical accuracy:\n");
  std::printf("%-9s %-11s %s\n", "worker", "estimated", "empirical");
  for (SourceId s = 0; s < 10; ++s) {
    auto empirical = dataset.EmpiricalSourceAccuracy(s);
    std::printf("w%-8d %-11.3f %.3f\n", s,
                output.source_accuracies[static_cast<size_t>(s)],
                empirical.ok() ? empirical.ValueOrDie() : 0.0);
  }

  // Source-quality initialization: predict accuracies of "new" workers
  // (the last 25% of workers, whose observations we pretend not to have)
  // from profile features alone.
  auto predictor = SourceQualityPredictor::FromModel(fit.model).ValueOrDie();
  double error_sum = 0.0;
  int32_t count = 0;
  for (SourceId s = dataset.num_sources() * 3 / 4;
       s < dataset.num_sources(); ++s) {
    auto empirical = dataset.EmpiricalSourceAccuracy(s);
    if (!empirical.ok()) continue;
    error_sum += std::fabs(predictor.PredictAccuracyOf(dataset, s) -
                           empirical.ValueOrDie());
    ++count;
  }
  std::printf("\nCold-start prediction for %d unseen workers: mean abs "
              "accuracy error %.3f\n",
              count, error_sum / count);
  return 0;
}
