// Streaming fusion: truth discovery over an observation stream.
//
// The paper's related work points at single-pass streaming truth discovery
// (Zhao et al. [44]) as the answer to fusion over high-velocity feeds.
// This example replays the Crowd simulator as a stream of worker answers:
// claims arrive one at a time, curated ground truth trickles in for ~5% of
// tasks with a delay, and we track how the running estimates and
// source-accuracy beliefs improve as the stream progresses. (Streaming
// credit-assignment assumes roughly independent sources — on the
// correlated Demonstrations instance it falls into the same copier trap as
// every agreement-based method; see EXPERIMENTS.md on Figure 8.)
//
// Build & run:  ./build/examples/streaming_news

#include <cstdio>
#include <vector>

#include "core/streaming.h"
#include "synth/simulators.h"
#include "util/random.h"

using namespace slimfast;

int main() {
  auto synth = MakeCrowdSim(/*seed=*/77).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  std::printf("Replaying %lld observations from %d crowd workers as a "
              "stream...\n\n",
              static_cast<long long>(dataset.num_observations()),
              dataset.num_sources());

  StreamingOptions options;
  options.default_accuracy = 0.6;
  options.domain_size_hint = 4.0;  // 4 sentiment classes
  StreamingFusion fusion(options);
  Rng rng(5);

  const auto& observations = dataset.observations();
  int64_t next_checkpoint = static_cast<int64_t>(observations.size()) / 5;

  std::printf("%-14s %-14s %s\n", "obs processed", "est. accuracy",
              "(over objects seen so far)");
  for (size_t i = 0; i < observations.size(); ++i) {
    const Observation& obs = observations[i];
    SLIMFAST_CHECK_OK(fusion.Observe(obs.object, obs.source, obs.value));
    // Curation feed: ~2% of objects get a delayed ground-truth label.
    if (rng.Bernoulli(0.05 / 20.0)) {
      ObjectId o = obs.object;
      if (dataset.HasTruth(o)) {
        SLIMFAST_CHECK_OK(fusion.ProvideTruth(o, dataset.Truth(o)));
      }
    }

    if (static_cast<int64_t>(i + 1) >= next_checkpoint) {
      int64_t evaluated = 0;
      int64_t correct = 0;
      for (ObjectId o = 0; o < dataset.num_objects(); ++o) {
        ValueId estimate = fusion.CurrentEstimate(o);
        if (estimate == kNoValue || !dataset.HasTruth(o)) continue;
        ++evaluated;
        if (estimate == dataset.Truth(o)) ++correct;
      }
      std::printf("%-14lld %-14.3f (%lld objects)\n",
                  static_cast<long long>(i + 1),
                  static_cast<double>(correct) /
                      static_cast<double>(evaluated),
                  static_cast<long long>(evaluated));
      next_checkpoint += static_cast<int64_t>(observations.size()) / 5;
    }
  }

  // How well did the stream learn the sources?
  double error = 0.0;
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    auto empirical = dataset.EmpiricalSourceAccuracy(s);
    if (!empirical.ok()) continue;
    error += std::fabs(fusion.SourceAccuracy(s) - empirical.ValueOrDie());
  }
  std::printf("\nFinal mean |accuracy error| over sources: %.3f\n",
              error / dataset.num_sources());
  std::printf("One pass, O(1) work per observation — compare "
              "examples/optimizer_tour for the batch pipeline.\n");
  return 0;
}
